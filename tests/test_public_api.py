"""The public API surface: imports, __all__ hygiene, version."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.bandit",
    "repro.boosting",
    "repro.core",
    "repro.crowd",
    "repro.data",
    "repro.eval",
    "repro.eval.experiments",
    "repro.metrics",
    "repro.models",
    "repro.nn",
    "repro.truth",
    "repro.utils",
    "repro.vision",
]


class TestPublicApi:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_imports(self, package):
        importlib.import_module(package)

    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_entries_resolve(self, package):
        module = importlib.import_module(package)
        exported = getattr(module, "__all__", [])
        for name in exported:
            assert hasattr(module, name), f"{package}.{name} missing"

    def test_version(self):
        import repro

        assert repro.__version__.count(".") == 2

    def test_top_level_convenience(self):
        import repro

        assert callable(repro.build_dataset)
        assert callable(repro.train_test_split)
        assert repro.CrowdLearnConfig().n_cycles == 40
        assert hasattr(repro.CrowdLearnSystem, "build")

    def test_no_heavy_framework_dependencies(self):
        """The reproduction must stay numpy/scipy-only."""
        import sys

        import repro.core.system  # noqa: F401 - force full import chain
        import repro.eval.runner  # noqa: F401

        for forbidden in ("torch", "sklearn", "xgboost", "tensorflow"):
            assert forbidden not in sys.modules
