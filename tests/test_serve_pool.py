"""Tests for the shared crowd pool: metering, backpressure, conservation."""

import pytest

from repro.serve.admission import AdmissionRequest
from repro.serve.pool import EventLedger, SharedCrowdPool


def requests(*pairs):
    return [AdmissionRequest(event_id=e, demand=d) for e, d in pairs]


class TestUnmetered:
    def test_admits_everything(self):
        pool = SharedCrowdPool()
        pool.begin_window(0, requests(("a", 5)))
        decision = pool.admit("a", 5)
        assert decision.granted == 5
        assert decision.deferred == 0
        assert pool.ledger("a").conserved()

    def test_metered_property(self):
        assert not SharedCrowdPool().metered
        assert SharedCrowdPool(capacity_per_cycle=4).metered


class TestMetered:
    def test_quota_enforced_and_overflow_deferred(self):
        pool = SharedCrowdPool(capacity_per_cycle=4)
        pool.begin_window(0, requests(("a", 4), ("b", 4)))
        da = pool.admit("a", 4)
        db = pool.admit("b", 4)
        assert da.granted == 2 and da.deferred == 2
        assert db.granted == 2 and db.deferred == 2
        assert pool.ledger("a").backlog == 2
        assert pool.conserved()

    def test_backlog_served_as_catchup_in_later_window(self):
        pool = SharedCrowdPool(capacity_per_cycle=4)
        pool.begin_window(0, requests(("a", 4), ("b", 4)))
        pool.admit("a", 4)
        pool.admit("b", 4)
        # b finished; window 1 is a's alone: fresh 2 + backlog 2.
        pool.begin_window(1, requests(("a", 4)))
        decision = pool.admit("a", 2)
        assert decision.granted == 4
        assert decision.admitted_new == 2
        assert decision.served_backlog == 2
        assert pool.ledger("a").backlog == 0
        assert pool.conserved()

    def test_fresh_demand_served_before_backlog(self):
        pool = SharedCrowdPool(capacity_per_cycle=3)
        pool.begin_window(0, requests(("a", 5)))
        pool.admit("a", 5)  # granted 3, backlog 2
        pool.begin_window(1, requests(("a", 5)))
        decision = pool.admit("a", 3)
        assert decision.admitted_new == 3
        assert decision.served_backlog == 0
        assert pool.ledger("a").backlog == 2

    def test_max_servable_caps_catchup(self):
        pool = SharedCrowdPool(capacity_per_cycle=10)
        pool.begin_window(0, requests(("a", 8)))
        pool.ledger("a").backlog = 6
        decision = pool.admit("a", 2, max_servable=5)
        assert decision.granted == 5
        assert decision.admitted_new == 2
        assert decision.served_backlog == 3

    def test_backlog_bound_sheds(self):
        pool = SharedCrowdPool(capacity_per_cycle=0, max_backlog=3)
        pool.begin_window(0, requests(("a", 5)))
        decision = pool.admit("a", 5)
        assert decision.granted == 0
        assert decision.deferred == 5
        assert decision.shed == 2
        led = pool.ledger("a")
        assert led.backlog == 3 and led.shed == 2
        assert led.conserved()

    def test_window_capacity_shared_across_events(self):
        pool = SharedCrowdPool(capacity_per_cycle=5)
        pool.begin_window(0, requests(("a", 3), ("b", 3)))
        total = pool.admit("a", 3).granted + pool.admit("b", 3).granted
        assert total <= 5

    def test_windows_must_advance(self):
        pool = SharedCrowdPool(capacity_per_cycle=4)
        pool.begin_window(2, requests(("a", 1)))
        with pytest.raises(ValueError, match="monotonically"):
            pool.begin_window(2, requests(("a", 1)))

    def test_negative_demand_rejected(self):
        pool = SharedCrowdPool()
        with pytest.raises(ValueError, match="demand_new"):
            pool.admit("a", -1)


class TestBooks:
    def test_shed_backlog_closes_books(self):
        pool = SharedCrowdPool(capacity_per_cycle=1)
        pool.begin_window(0, requests(("a", 4)))
        pool.admit("a", 4)
        dropped = pool.shed_backlog("a")
        led = pool.ledger("a")
        assert dropped == 3
        assert led.backlog == 0
        assert led.conserved()

    def test_note_post_meters_worker_assignments(self):
        pool = SharedCrowdPool()
        pool.note_post("a", workers_per_query=5)
        pool.note_post("a", workers_per_query=5)
        led = pool.ledger("a")
        assert led.posted_queries == 2
        assert led.worker_assignments == 10

    def test_totals_aggregate(self):
        pool = SharedCrowdPool(capacity_per_cycle=2)
        pool.begin_window(0, requests(("a", 3), ("b", 3)))
        pool.admit("a", 3)
        pool.admit("b", 3)
        totals = pool.totals()
        assert totals["requested"] == 6
        assert totals["admitted"] + totals["backlog"] + totals["shed"] == 6

    def test_conservation_over_arbitrary_timeline(self):
        pool = SharedCrowdPool(capacity_per_cycle=3, max_backlog=2)
        for window in range(6):
            pool.begin_window(
                window, requests(("a", 4), ("b", 2), ("c", 1))
            )
            for event, demand in (("a", 4), ("b", 2), ("c", 1)):
                pool.admit(event, demand)
        for event in ("a", "b", "c"):
            pool.shed_backlog(event)
        assert pool.conserved()
        assert pool.totals()["backlog"] == 0


class TestSnapshotRestore:
    def test_round_trip_is_identity(self):
        pool = SharedCrowdPool(capacity_per_cycle=4, max_backlog=3)
        pool.begin_window(0, requests(("a", 5), ("b", 2)))
        pool.admit("a", 5)
        pool.note_post("a", 5)
        snap = pool.snapshot()
        assert SharedCrowdPool.restore(snap).snapshot() == snap

    def test_restore_continues_metering(self):
        pool = SharedCrowdPool(capacity_per_cycle=4)
        pool.begin_window(0, requests(("a", 6)))
        pool.admit("a", 3)  # 3 of the 4-slot quota used
        restored = SharedCrowdPool.restore(pool.snapshot())
        decision = restored.admit("a", 3)
        assert decision.granted == pool.admit("a", 3).granted

    def test_ledger_dataclass_round_trip(self):
        led = EventLedger(requested=5, admitted=3, deferred=2, backlog=2)
        assert EventLedger(**led.as_dict()) == led
