"""Tests for repro.telemetry.metrics (instruments and registry)."""

import math

import pytest

from repro.telemetry.metrics import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    log_buckets,
)


class TestLogBuckets:
    def test_default_decades(self):
        buckets = log_buckets(1e-4, 1e3, per_decade=1)
        assert buckets[0] == pytest.approx(1e-4)
        assert buckets[-1] == pytest.approx(1e3)
        assert len(buckets) == 8
        ratios = [b / a for a, b in zip(buckets, buckets[1:])]
        assert all(r == pytest.approx(10.0) for r in ratios)

    def test_per_decade_subdivision(self):
        buckets = log_buckets(1.0, 100.0, per_decade=2)
        assert len(buckets) == 5
        assert buckets[1] == pytest.approx(math.sqrt(10))

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            log_buckets(0.0, 1.0)
        with pytest.raises(ValueError):
            log_buckets(1.0, 1.0)
        with pytest.raises(ValueError):
            log_buckets(1.0, 10.0, per_decade=0)

    def test_default_time_buckets_ascending(self):
        assert list(DEFAULT_TIME_BUCKETS) == sorted(DEFAULT_TIME_BUCKETS)


class TestCounter:
    def test_accumulates(self):
        c = Counter("x_total")
        c.inc()
        c.inc(2.5)
        assert c.value == pytest.approx(3.5)

    def test_rejects_negative_and_nonfinite(self):
        c = Counter("x_total")
        with pytest.raises(ValueError):
            c.inc(-1)
        with pytest.raises(ValueError):
            c.inc(float("nan"))
        with pytest.raises(ValueError):
            c.inc(float("inf"))

    def test_zero_increment_allowed(self):
        c = Counter("x_total")
        c.inc(0.0)
        assert c.value == 0.0

    def test_invalid_name_rejected(self):
        with pytest.raises(ValueError):
            Counter("bad name!")


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("depth")
        g.set(5.0)
        g.inc(2.0)
        g.dec(3.0)
        assert g.value == pytest.approx(4.0)

    def test_negative_allowed_nan_rejected(self):
        g = Gauge("depth")
        g.set(-10.0)
        assert g.value == -10.0
        with pytest.raises(ValueError):
            g.set(float("nan"))


class TestHistogram:
    def test_bucketing(self):
        h = Histogram("lat", buckets=(1.0, 10.0, 100.0))
        for v in (0.5, 5.0, 50.0, 500.0):
            h.observe(v)
        assert h.bucket_counts == [1, 1, 1, 1]
        assert h.cumulative_counts() == [1, 2, 3, 4]
        assert h.count == 4
        assert h.sum == pytest.approx(555.5)

    def test_zero_lands_in_first_bucket(self):
        h = Histogram("lat", buckets=(1.0, 10.0))
        h.observe(0.0)
        assert h.bucket_counts == [1, 0, 0]
        assert h.sum == 0.0

    def test_exact_bound_is_le(self):
        h = Histogram("lat", buckets=(1.0, 10.0))
        h.observe(1.0)  # le="1" bucket includes 1.0
        assert h.bucket_counts == [1, 0, 0]

    def test_inf_goes_to_overflow(self):
        h = Histogram("lat", buckets=(1.0,))
        h.observe(float("inf"))
        assert h.bucket_counts == [0, 1]
        assert math.isinf(h.sum)

    def test_negative_and_nan_rejected(self):
        h = Histogram("lat", buckets=(1.0,))
        with pytest.raises(ValueError):
            h.observe(-0.001)
        with pytest.raises(ValueError):
            h.observe(float("nan"))
        assert h.count == 0

    def test_invalid_buckets(self):
        with pytest.raises(ValueError):
            Histogram("lat", buckets=())
        with pytest.raises(ValueError):
            Histogram("lat", buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("lat", buckets=(10.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("lat", buckets=(-1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("lat", buckets=(1.0, float("inf")))

    def test_mean(self):
        h = Histogram("lat", buckets=(10.0,))
        assert h.mean() == 0.0
        h.observe(2.0)
        h.observe(4.0)
        assert h.mean() == pytest.approx(3.0)


class TestMetricsRegistry:
    def test_same_identity_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a_total") is reg.counter("a_total")
        assert reg.counter("a_total", stage="x") is not reg.counter("a_total")

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("a")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("a", stage="x")  # same name, different labels

    def test_bucket_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ValueError, match="buckets"):
            reg.histogram("h", buckets=(1.0, 3.0))

    def test_value_lookup(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(7)
        assert reg.value("a") == 7.0
        assert reg.value("missing", default=-1.0) == -1.0
        reg.histogram("h", buckets=(1.0,)).observe(0.5)
        assert reg.value("h") == pytest.approx(0.5)  # histogram sum

    def test_as_dict_from_dict_roundtrip(self):
        reg = MetricsRegistry()
        reg.counter("c_total", help="a counter", stage="x").inc(3)
        reg.gauge("g").set(-2.5)
        h = reg.histogram("h_seconds", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(5.0)
        restored = MetricsRegistry.from_dict(reg.as_dict())
        assert restored.value("c_total", stage="x") == 3.0
        assert restored.value("g") == -2.5
        rh = restored.get("h_seconds")
        assert rh.bucket_counts == h.bucket_counts
        assert rh.sum == h.sum
        assert rh.count == h.count
        assert rh.buckets == h.buckets

    def test_from_dict_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown instrument kind"):
            MetricsRegistry.from_dict(
                {"instruments": [{"kind": "summary", "name": "x"}]}
            )

    def test_iteration_and_len(self):
        reg = MetricsRegistry()
        reg.counter("a")
        reg.gauge("b")
        assert len(reg) == 2
        assert {i.name for i in reg} == {"a", "b"}
