"""Tests for repro.crowd.population."""

import numpy as np
import pytest

from repro.crowd.population import WorkerPopulation
from repro.utils.clock import TemporalContext


class TestWorkerPopulation:
    def test_size(self, population):
        assert len(population) == 40

    def test_mean_reliability_near_point_eight(self):
        pop = WorkerPopulation(n_workers=500, rng=np.random.default_rng(0))
        assert pop.mean_reliability() == pytest.approx(0.8, abs=0.03)

    def test_workers_have_valid_attributes(self, population):
        for worker in population.workers:
            assert 0.0 <= worker.reliability <= 1.0
            assert 0.0 <= worker.insight <= 1.0
            assert worker.speed > 0
            for context in TemporalContext:
                assert worker.activity[context] >= 0

    def test_indexing(self, population):
        assert population[3].worker_id == 3

    def test_sample_workers_distinct(self, population, rng):
        workers = population.sample_workers(10, TemporalContext.EVENING, rng)
        ids = [w.worker_id for w in workers]
        assert len(set(ids)) == 10

    def test_sample_respects_bounds(self, population, rng):
        with pytest.raises(ValueError):
            population.sample_workers(0, TemporalContext.EVENING, rng)
        with pytest.raises(ValueError):
            population.sample_workers(41, TemporalContext.EVENING, rng)

    def test_evening_activity_higher_on_average(self):
        pop = WorkerPopulation(n_workers=300, rng=np.random.default_rng(1))
        evening = np.mean(
            [w.activity[TemporalContext.EVENING] for w in pop.workers]
        )
        morning = np.mean(
            [w.activity[TemporalContext.MORNING] for w in pop.workers]
        )
        assert evening > morning

    def test_active_workers_sampled_more(self):
        pop = WorkerPopulation(n_workers=30, rng=np.random.default_rng(2))
        rng = np.random.default_rng(3)
        counts = np.zeros(30)
        for _ in range(400):
            for w in pop.sample_workers(5, TemporalContext.MORNING, rng):
                counts[w.worker_id] += 1
        activities = np.array(
            [w.activity[TemporalContext.MORNING] for w in pop.workers]
        )
        # Rank correlation between activity and sample frequency.
        corr = np.corrcoef(activities, counts)[0, 1]
        assert corr > 0.5

    def test_invalid_size_raises(self):
        with pytest.raises(ValueError):
            WorkerPopulation(n_workers=0)

    def test_deterministic_given_seed(self):
        a = WorkerPopulation(10, np.random.default_rng(7))
        b = WorkerPopulation(10, np.random.default_rng(7))
        for wa, wb in zip(a.workers, b.workers):
            assert wa.reliability == wb.reliability
            assert wa.speed == wb.speed
