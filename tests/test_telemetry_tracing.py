"""Tests for repro.telemetry.tracing (spans, nesting, manual clock)."""

import pytest

from repro.telemetry.tracing import (
    ManualClock,
    SpanRecord,
    Tracer,
    aggregate_spans,
)


class TestManualClock:
    def test_ticks_per_reading(self):
        clock = ManualClock(tick_seconds=2.0)
        assert clock() == 0.0
        assert clock() == 2.0
        assert clock() == 4.0

    def test_advance(self):
        clock = ManualClock(tick_seconds=1.0)
        clock.advance(10.0)
        assert clock() == 10.0
        with pytest.raises(ValueError):
            clock.advance(-1.0)


class TestTracer:
    def test_deterministic_durations(self):
        tracer = Tracer(clock=ManualClock(tick_seconds=1.0))
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        # readings: outer.start=0, inner.start=1, inner.end=2, outer.end=3
        inner, outer = tracer.spans
        assert inner.name == "inner" and inner.duration == 1.0
        assert outer.name == "outer" and outer.duration == 3.0

    def test_parent_links(self):
        tracer = Tracer(clock=ManualClock())
        with tracer.span("a"):
            with tracer.span("b"):
                pass
            with tracer.span("c"):
                pass
        by_name = {s.name: s for s in tracer.spans}
        assert by_name["a"].parent_id is None
        assert by_name["b"].parent_id == by_name["a"].span_id
        assert by_name["c"].parent_id == by_name["a"].span_id
        assert tracer.roots() == [by_name["a"]]

    def test_siblings_after_nesting(self):
        tracer = Tracer(clock=ManualClock())
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert all(s.parent_id is None for s in tracer.spans)

    def test_attributes_and_set(self):
        tracer = Tracer(clock=ManualClock())
        with tracer.span("s", cycle=3) as span:
            span.set(queries=5)
        record = tracer.spans[0]
        assert record.attributes == {"cycle": 3, "queries": 5}

    def test_exception_tags_error_and_propagates(self):
        tracer = Tracer(clock=ManualClock())
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("nope")
        record = tracer.spans[0]
        assert record.attributes["error"] == "RuntimeError"
        # the stack unwound: a new span is a root again
        with tracer.span("after"):
            pass
        assert tracer.spans[-1].parent_id is None

    def test_on_finish_callback(self):
        seen = []
        tracer = Tracer(clock=ManualClock(), on_finish=seen.append)
        with tracer.span("x"):
            pass
        assert [r.name for r in seen] == ["x"]

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Tracer(clock=ManualClock()).span("")

    def test_by_name_and_clear(self):
        tracer = Tracer(clock=ManualClock())
        with tracer.span("x"):
            pass
        with tracer.span("y"):
            pass
        assert len(tracer.by_name("x")) == 1
        tracer.clear()
        assert tracer.spans == []


class TestSpanRecord:
    def test_dict_roundtrip(self):
        record = SpanRecord(
            name="s", start=1.0, end=3.5, span_id=4, parent_id=2,
            attributes={"k": "v"},
        )
        restored = SpanRecord.from_dict(record.as_dict())
        assert restored == record
        assert restored.duration == 2.5

    def test_root_parent_roundtrip(self):
        record = SpanRecord(name="s", start=0.0, end=1.0, span_id=0,
                            parent_id=None)
        assert SpanRecord.from_dict(record.as_dict()).parent_id is None


class TestAggregateSpans:
    def test_stats(self):
        tracer = Tracer(clock=ManualClock(tick_seconds=1.0))
        for _ in range(2):
            with tracer.span("stage"):
                pass
        stats = aggregate_spans(tracer.spans)["stage"]
        assert stats.count == 2
        assert stats.total_seconds == 2.0
        assert stats.mean_seconds == 1.0
        assert stats.min_seconds == 1.0
        assert stats.max_seconds == 1.0

    def test_empty(self):
        assert aggregate_spans([]) == {}
