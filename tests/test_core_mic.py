"""Tests for repro.core.mic — machine intelligence calibration."""

import numpy as np
import pytest

from repro.core.committee import Committee
from repro.core.mic import MachineIntelligenceCalibrator
from tests.test_core_committee import StubExpert


@pytest.fixture
def committee():
    return Committee(
        [StubExpert("good", [0.9, 0.05, 0.05]), StubExpert("bad", [0.05, 0.05, 0.9])]
    )


def truth_like_good(n):
    """Truth distributions matching the 'good' expert's output."""
    return np.tile([0.9, 0.05, 0.05], (n, 1))


class TestExpertLosses:
    def test_agreeing_expert_low_loss(self, committee):
        mic = MachineIntelligenceCalibrator()
        votes = [e.predict_proba(DummyLen(4)) for e in committee.experts]
        losses = mic.expert_losses(votes, truth_like_good(4))
        assert losses[0] < losses[1]
        assert 0.0 <= losses.min() and losses.max() < 1.0

    def test_misaligned_shapes_raise(self, committee):
        mic = MachineIntelligenceCalibrator()
        votes = [np.tile([0.9, 0.05, 0.05], (3, 1))]
        with pytest.raises(ValueError):
            mic.expert_losses(votes, truth_like_good(4))


class DummyLen:
    """Minimal stand-in dataset with a length."""

    def __init__(self, n):
        self.n = n

    def __len__(self):
        return self.n


class TestUpdateWeights:
    def test_shifts_weight_to_agreeing_expert(self, committee):
        mic = MachineIntelligenceCalibrator(eta=2.0)
        votes = [e.predict_proba(DummyLen(4)) for e in committee.experts]
        weights = mic.update_weights(committee, votes, truth_like_good(4))
        assert weights[0] > weights[1]
        assert weights.sum() == pytest.approx(1.0)

    def test_repeated_updates_converge_to_good_expert(self, committee):
        mic = MachineIntelligenceCalibrator(eta=2.0)
        votes = [e.predict_proba(DummyLen(4)) for e in committee.experts]
        for _ in range(20):
            mic.update_weights(committee, votes, truth_like_good(4))
        assert committee.weights[0] > 0.95

    def test_reweight_disabled_is_noop(self, committee):
        mic = MachineIntelligenceCalibrator(reweight=False)
        before = committee.weights
        votes = [e.predict_proba(DummyLen(4)) for e in committee.experts]
        after = mic.update_weights(committee, votes, truth_like_good(4))
        np.testing.assert_array_equal(before, after)

    def test_eta_zero_keeps_weights(self, committee):
        mic = MachineIntelligenceCalibrator(eta=0.0)
        votes = [e.predict_proba(DummyLen(4)) for e in committee.experts]
        weights = mic.update_weights(committee, votes, truth_like_good(4))
        np.testing.assert_allclose(weights, [0.5, 0.5])


class TestRetrainExperts:
    def test_retrains_with_pool_mix(self, committee, small_dataset, rng):
        mic = MachineIntelligenceCalibrator(replay_size=5)
        query_images = [small_dataset[i] for i in range(3)]
        mic.retrain_experts(
            committee, query_images, np.array([0, 1, 2]), small_dataset, rng
        )
        for expert in committee.experts:
            assert expert.retrained_with is not None
            assert expert.retrained_with.shape == (8,)  # 3 queries + 5 replay

    def test_retrain_disabled_is_noop(self, committee, small_dataset, rng):
        mic = MachineIntelligenceCalibrator(retrain=False)
        mic.retrain_experts(
            committee, [small_dataset[0]], np.array([0]), small_dataset, rng
        )
        assert committee.experts[0].retrained_with is None

    def test_empty_query_set_is_noop(self, committee, small_dataset, rng):
        mic = MachineIntelligenceCalibrator()
        mic.retrain_experts(committee, [], np.array([]), small_dataset, rng)
        assert committee.experts[0].retrained_with is None

    def test_label_mismatch_raises(self, committee, small_dataset, rng):
        mic = MachineIntelligenceCalibrator()
        with pytest.raises(ValueError):
            mic.retrain_experts(
                committee, [small_dataset[0]], np.array([0, 1]), small_dataset, rng
            )

    def test_zero_replay(self, committee, small_dataset, rng):
        mic = MachineIntelligenceCalibrator(replay_size=0)
        mic.retrain_experts(
            committee, [small_dataset[0]], np.array([2]), small_dataset, rng
        )
        np.testing.assert_array_equal(committee.experts[0].retrained_with, [2])


class TestOffloading:
    def test_labels_replaced(self):
        mic = MachineIntelligenceCalibrator()
        labels = np.array([0, 0, 0, 0])
        out = mic.offload_labels(labels, np.array([1, 3]), np.array([2, 1]))
        np.testing.assert_array_equal(out, [0, 2, 0, 1])
        np.testing.assert_array_equal(labels, [0, 0, 0, 0])  # input untouched

    def test_offload_disabled(self):
        mic = MachineIntelligenceCalibrator(offload=False)
        labels = np.array([0, 0])
        out = mic.offload_labels(labels, np.array([1]), np.array([2]))
        np.testing.assert_array_equal(out, [0, 0])

    def test_distributions_replaced(self):
        mic = MachineIntelligenceCalibrator()
        vote = np.full((3, 3), 1 / 3)
        truth = np.array([[0.0, 0.0, 1.0]])
        out = mic.offload_distributions(vote, np.array([2]), truth)
        np.testing.assert_allclose(out[2], [0.0, 0.0, 1.0])
        np.testing.assert_allclose(out[0], 1 / 3)

    def test_misaligned_offload_raises(self):
        mic = MachineIntelligenceCalibrator()
        with pytest.raises(ValueError):
            mic.offload_labels(np.zeros(3), np.array([0, 1]), np.array([2]))

    def test_invalid_hyperparams_raise(self):
        with pytest.raises(ValueError):
            MachineIntelligenceCalibrator(eta=-1.0)
        with pytest.raises(ValueError):
            MachineIntelligenceCalibrator(replay_size=-1)


from repro.core.mic import ReplayBuffer  # noqa: E402  (test-section import)


class EpochStubExpert(StubExpert):
    """StubExpert that accepts the warm-start ``epochs`` override."""

    def __init__(self, name, distribution):
        super().__init__(name, distribution)
        self.retrain_calls = []  # (n_samples, epochs) per retrain

    def retrain(self, dataset, labels, rng, *, epochs=None):
        self.retrained_with = np.asarray(labels)
        self.retrain_calls.append((len(dataset), epochs))
        return self


@pytest.fixture
def epoch_committee():
    return Committee(
        [EpochStubExpert("a", [0.8, 0.1, 0.1]), EpochStubExpert("b", [0.1, 0.8, 0.1])]
    )


class TestReplayBuffer:
    def test_capacity_evicts_oldest(self, small_dataset):
        buffer = ReplayBuffer(capacity=4)
        images = [small_dataset[i] for i in range(6)]
        buffer.add(images[:3], np.array([0, 1, 2]))
        buffer.add(images[3:], np.array([0, 1, 2]))
        assert len(buffer) == 4
        # FIFO: the two oldest entries fell out.
        assert buffer._images == images[2:]
        assert buffer._labels == [2, 0, 1, 2]

    def test_label_mismatch_raises(self, small_dataset):
        buffer = ReplayBuffer(capacity=4)
        with pytest.raises(ValueError):
            buffer.add([small_dataset[0]], np.array([0, 1]))

    def test_sample_without_replacement(self, small_dataset, rng):
        buffer = ReplayBuffer(capacity=8)
        buffer.add([small_dataset[i] for i in range(5)], np.arange(5) % 3)
        images, labels = buffer.sample(5, rng)
        assert len(images) == len(labels) == 5
        assert {id(i) for i in images} == {id(i) for i in buffer._images}

    def test_sample_more_than_held_returns_all(self, small_dataset, rng):
        buffer = ReplayBuffer(capacity=8)
        buffer.add([small_dataset[0]], np.array([1]))
        images, labels = buffer.sample(10, rng)
        assert len(images) == 1 and labels == [1]

    def test_sample_zero_or_empty(self, small_dataset, rng):
        buffer = ReplayBuffer(capacity=8)
        assert buffer.sample(3, rng) == ([], [])
        buffer.add([small_dataset[0]], np.array([1]))
        assert buffer.sample(0, rng) == ([], [])

    def test_sample_deterministic_given_rng(self, small_dataset):
        buffer = ReplayBuffer(capacity=8)
        buffer.add([small_dataset[i] for i in range(6)], np.arange(6) % 3)
        a = buffer.sample(3, np.random.default_rng(0))
        b = buffer.sample(3, np.random.default_rng(0))
        assert a[1] == b[1] and [id(i) for i in a[0]] == [id(i) for i in b[0]]

    def test_invalid_capacity_raises(self):
        with pytest.raises(ValueError):
            ReplayBuffer(capacity=0)


class TestWarmStartScheduling:
    def retrain(self, mic, committee, dataset, rng, n_queries=3):
        queries = [dataset[i] for i in range(n_queries)]
        mic.retrain_experts(
            committee, queries, np.arange(n_queries) % 3, dataset, rng
        )

    def test_first_retrain_is_cold(self, epoch_committee, small_dataset, rng):
        mic = MachineIntelligenceCalibrator(
            warm_start=True, replay_size=5, warm_replay_sample=2
        )
        self.retrain(mic, epoch_committee, small_dataset, rng)
        expert = epoch_committee.experts[0]
        # Full golden replay (3 queries + 5 pool), default epoch schedule.
        assert expert.retrain_calls == [(8, None)]
        assert mic.retrain_stats()["full_refits"] == 1

    def test_warm_cycles_finetune_on_crowd_replay(
        self, epoch_committee, small_dataset, rng
    ):
        mic = MachineIntelligenceCalibrator(
            warm_start=True,
            replay_size=5,
            warm_replay_sample=2,
            full_refit_every=0,
            warm_epochs=2,
        )
        for _ in range(3):
            self.retrain(mic, epoch_committee, small_dataset, rng)
        calls = epoch_committee.experts[0].retrain_calls
        # Cold first (golden replay, default epochs), then warm: 3 queries
        # + 2 ReplayBuffer samples at the warm epoch budget.
        assert calls == [(8, None), (5, 2), (5, 2)]
        stats = mic.retrain_stats()
        assert stats == {
            "retrains": 3,
            "warm_retrains": 2,
            "full_refits": 1,
            "replay_buffered": 9,
        }

    def test_periodic_full_refit(self, epoch_committee, small_dataset, rng):
        mic = MachineIntelligenceCalibrator(
            warm_start=True, warm_replay_sample=1, full_refit_every=3
        )
        for _ in range(7):
            self.retrain(mic, epoch_committee, small_dataset, rng)
        epochs = [e for _, e in epoch_committee.experts[0].retrain_calls]
        # Cold at retrain 0, 3 and 6; warm (epochs=1) in between.
        assert epochs == [None, 1, 1, None, 1, 1, None]
        assert mic.retrain_stats()["full_refits"] == 3

    def test_refit_every_cycle_never_warms(
        self, epoch_committee, small_dataset, rng
    ):
        mic = MachineIntelligenceCalibrator(warm_start=True, full_refit_every=1)
        for _ in range(4):
            self.retrain(mic, epoch_committee, small_dataset, rng)
        assert all(
            e is None for _, e in epoch_committee.experts[0].retrain_calls
        )
        assert mic.retrain_stats()["warm_retrains"] == 0

    def test_warm_disabled_keeps_buffer_empty(
        self, epoch_committee, small_dataset, rng
    ):
        mic = MachineIntelligenceCalibrator(warm_start=False)
        for _ in range(3):
            self.retrain(mic, epoch_committee, small_dataset, rng)
        stats = mic.retrain_stats()
        assert stats["replay_buffered"] == 0
        assert stats["warm_retrains"] == 0
        assert stats["full_refits"] == 3

    def test_invalid_warm_hyperparams_raise(self):
        with pytest.raises(ValueError):
            MachineIntelligenceCalibrator(warm_replay_sample=-1)
        with pytest.raises(ValueError):
            MachineIntelligenceCalibrator(full_refit_every=-1)
        with pytest.raises(ValueError):
            MachineIntelligenceCalibrator(warm_epochs=0)
