"""Tests for repro.core.mic — machine intelligence calibration."""

import numpy as np
import pytest

from repro.core.committee import Committee
from repro.core.mic import MachineIntelligenceCalibrator
from tests.test_core_committee import StubExpert


@pytest.fixture
def committee():
    return Committee(
        [StubExpert("good", [0.9, 0.05, 0.05]), StubExpert("bad", [0.05, 0.05, 0.9])]
    )


def truth_like_good(n):
    """Truth distributions matching the 'good' expert's output."""
    return np.tile([0.9, 0.05, 0.05], (n, 1))


class TestExpertLosses:
    def test_agreeing_expert_low_loss(self, committee):
        mic = MachineIntelligenceCalibrator()
        votes = [e.predict_proba(DummyLen(4)) for e in committee.experts]
        losses = mic.expert_losses(votes, truth_like_good(4))
        assert losses[0] < losses[1]
        assert 0.0 <= losses.min() and losses.max() < 1.0

    def test_misaligned_shapes_raise(self, committee):
        mic = MachineIntelligenceCalibrator()
        votes = [np.tile([0.9, 0.05, 0.05], (3, 1))]
        with pytest.raises(ValueError):
            mic.expert_losses(votes, truth_like_good(4))


class DummyLen:
    """Minimal stand-in dataset with a length."""

    def __init__(self, n):
        self.n = n

    def __len__(self):
        return self.n


class TestUpdateWeights:
    def test_shifts_weight_to_agreeing_expert(self, committee):
        mic = MachineIntelligenceCalibrator(eta=2.0)
        votes = [e.predict_proba(DummyLen(4)) for e in committee.experts]
        weights = mic.update_weights(committee, votes, truth_like_good(4))
        assert weights[0] > weights[1]
        assert weights.sum() == pytest.approx(1.0)

    def test_repeated_updates_converge_to_good_expert(self, committee):
        mic = MachineIntelligenceCalibrator(eta=2.0)
        votes = [e.predict_proba(DummyLen(4)) for e in committee.experts]
        for _ in range(20):
            mic.update_weights(committee, votes, truth_like_good(4))
        assert committee.weights[0] > 0.95

    def test_reweight_disabled_is_noop(self, committee):
        mic = MachineIntelligenceCalibrator(reweight=False)
        before = committee.weights
        votes = [e.predict_proba(DummyLen(4)) for e in committee.experts]
        after = mic.update_weights(committee, votes, truth_like_good(4))
        np.testing.assert_array_equal(before, after)

    def test_eta_zero_keeps_weights(self, committee):
        mic = MachineIntelligenceCalibrator(eta=0.0)
        votes = [e.predict_proba(DummyLen(4)) for e in committee.experts]
        weights = mic.update_weights(committee, votes, truth_like_good(4))
        np.testing.assert_allclose(weights, [0.5, 0.5])


class TestRetrainExperts:
    def test_retrains_with_pool_mix(self, committee, small_dataset, rng):
        mic = MachineIntelligenceCalibrator(replay_size=5)
        query_images = [small_dataset[i] for i in range(3)]
        mic.retrain_experts(
            committee, query_images, np.array([0, 1, 2]), small_dataset, rng
        )
        for expert in committee.experts:
            assert expert.retrained_with is not None
            assert expert.retrained_with.shape == (8,)  # 3 queries + 5 replay

    def test_retrain_disabled_is_noop(self, committee, small_dataset, rng):
        mic = MachineIntelligenceCalibrator(retrain=False)
        mic.retrain_experts(
            committee, [small_dataset[0]], np.array([0]), small_dataset, rng
        )
        assert committee.experts[0].retrained_with is None

    def test_empty_query_set_is_noop(self, committee, small_dataset, rng):
        mic = MachineIntelligenceCalibrator()
        mic.retrain_experts(committee, [], np.array([]), small_dataset, rng)
        assert committee.experts[0].retrained_with is None

    def test_label_mismatch_raises(self, committee, small_dataset, rng):
        mic = MachineIntelligenceCalibrator()
        with pytest.raises(ValueError):
            mic.retrain_experts(
                committee, [small_dataset[0]], np.array([0, 1]), small_dataset, rng
            )

    def test_zero_replay(self, committee, small_dataset, rng):
        mic = MachineIntelligenceCalibrator(replay_size=0)
        mic.retrain_experts(
            committee, [small_dataset[0]], np.array([2]), small_dataset, rng
        )
        np.testing.assert_array_equal(committee.experts[0].retrained_with, [2])


class TestOffloading:
    def test_labels_replaced(self):
        mic = MachineIntelligenceCalibrator()
        labels = np.array([0, 0, 0, 0])
        out = mic.offload_labels(labels, np.array([1, 3]), np.array([2, 1]))
        np.testing.assert_array_equal(out, [0, 2, 0, 1])
        np.testing.assert_array_equal(labels, [0, 0, 0, 0])  # input untouched

    def test_offload_disabled(self):
        mic = MachineIntelligenceCalibrator(offload=False)
        labels = np.array([0, 0])
        out = mic.offload_labels(labels, np.array([1]), np.array([2]))
        np.testing.assert_array_equal(out, [0, 0])

    def test_distributions_replaced(self):
        mic = MachineIntelligenceCalibrator()
        vote = np.full((3, 3), 1 / 3)
        truth = np.array([[0.0, 0.0, 1.0]])
        out = mic.offload_distributions(vote, np.array([2]), truth)
        np.testing.assert_allclose(out[2], [0.0, 0.0, 1.0])
        np.testing.assert_allclose(out[0], 1 / 3)

    def test_misaligned_offload_raises(self):
        mic = MachineIntelligenceCalibrator()
        with pytest.raises(ValueError):
            mic.offload_labels(np.zeros(3), np.array([0, 1]), np.array([2]))

    def test_invalid_hyperparams_raise(self):
        with pytest.raises(ValueError):
            MachineIntelligenceCalibrator(eta=-1.0)
        with pytest.raises(ValueError):
            MachineIntelligenceCalibrator(replay_size=-1)
