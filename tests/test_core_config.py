"""Tests for repro.core.config."""

import dataclasses

import pytest

from repro.core.config import CrowdLearnConfig
from repro.utils.clock import TemporalContext


class TestDefaults:
    def test_paper_deployment_structure(self):
        config = CrowdLearnConfig()
        assert config.n_cycles == 40
        assert config.images_per_cycle == 10
        assert config.cycles_per_context == 10
        assert config.queries_per_cycle == 5
        assert config.total_queries == 200

    def test_budget_conversion(self):
        config = CrowdLearnConfig(budget_usd=16.0)
        assert config.budget_cents == 1600.0

    def test_frozen(self):
        config = CrowdLearnConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.n_cycles = 5


class TestQueriesPerContext:
    def test_even_split(self):
        config = CrowdLearnConfig()
        counts = config.queries_per_context()
        assert all(v == 50 for v in counts.values())
        assert sum(counts.values()) == 200

    def test_wrapping_blocks(self):
        config = CrowdLearnConfig(
            n_cycles=10, cycles_per_context=2, images_per_cycle=4,
            query_fraction=0.5,
        )
        counts = config.queries_per_context()
        # Blocks: M, A, E, Mi, M again -> morning gets 4 cycles x 2 queries.
        assert counts[TemporalContext.MORNING] == 8
        assert counts[TemporalContext.AFTERNOON] == 4

    def test_zero_fraction(self):
        config = CrowdLearnConfig(query_fraction=0.0)
        assert config.queries_per_cycle == 0
        assert all(v == 0 for v in config.queries_per_context().values())


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(n_cycles=0),
            dict(images_per_cycle=0),
            dict(cycles_per_context=0),
            dict(query_fraction=1.5),
            dict(qss_epsilon=-0.1),
            dict(workers_per_query=0),
            dict(n_workers=0),
            dict(incentive_levels=()),
            dict(incentive_levels=(1.0, -2.0)),
            dict(budget_usd=0.0),
            dict(guard_holdout_size=0),
            dict(guard_regression_tolerance=-0.1),
        ],
    )
    def test_invalid_values_raise(self, kwargs):
        with pytest.raises(ValueError):
            CrowdLearnConfig(**kwargs)

    def test_query_fraction_rounding(self):
        config = CrowdLearnConfig(images_per_cycle=10, query_fraction=0.25)
        assert config.queries_per_cycle == 2  # round(2.5) banker's -> 2


class TestGuardPolicyKnobs:
    def test_default_policy_is_enabled(self):
        policy = CrowdLearnConfig().guard_policy()
        assert policy.enabled
        assert policy.holdout_size == 24

    def test_knobs_flow_into_the_policy(self):
        config = CrowdLearnConfig(
            guard_holdout_size=12, guard_regression_tolerance=0.5
        )
        policy = config.guard_policy()
        assert policy.holdout_size == 12
        assert policy.regression_tolerance == 0.5

    def test_disabled_flag_gives_disabled_policy(self):
        policy = CrowdLearnConfig(guards_enabled=False).guard_policy()
        assert not policy.enabled
        assert not policy.regression_gate
