"""Tests for repro.models — the DDA experts (tiny configurations)."""

import numpy as np
import pytest

from repro.models.base import DDAModel
from repro.models.bovw_model import BoVWModel
from repro.models.ddm import DDMModel
from repro.models.registry import (
    available_models,
    create_model,
    default_committee_names,
    register_model,
)
from repro.models.vgg import VGGModel

TINY = {
    "VGG16": dict(epochs=3, width=4),
    "BoVW": dict(epochs=15, vocabulary_size=8),
    "DDM": dict(epochs=4, width=4, head_epochs=15),
}


@pytest.fixture(scope="module")
def split():
    from repro.data.dataset import build_dataset, train_test_split

    dataset = build_dataset(n_images=60, rng=np.random.default_rng(21))
    return train_test_split(dataset, n_train=45, rng=np.random.default_rng(22))


@pytest.fixture(scope="module", params=["VGG16", "BoVW", "DDM"])
def fitted_model(request, split):
    train, _ = split
    model = create_model(request.param, **TINY[request.param])
    model.fit(train, np.random.default_rng(23))
    return model


class TestDDAModelInterface:
    def test_predict_proba_shape_and_normalization(self, fitted_model, split):
        _, test = split
        probs = fitted_model.predict_proba(test)
        assert probs.shape == (len(test), 3)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-9)
        assert (probs >= 0).all()

    def test_predict_is_argmax(self, fitted_model, split):
        _, test = split
        probs = fitted_model.predict_proba(test)
        np.testing.assert_array_equal(
            fitted_model.predict(test), np.argmax(probs, axis=1)
        )

    def test_better_than_chance_on_train(self, fitted_model, split):
        train, _ = split
        accuracy = np.mean(fitted_model.predict(train) == train.labels())
        assert accuracy > 0.40  # 3 classes: chance is ~0.33

    def test_retrain_accepts_crowd_labels(self, fitted_model, split):
        train, _ = split
        subset = train.subset(range(8))
        crowd_labels = np.array([0, 1, 2, 0, 1, 2, 0, 1])
        fitted_model.retrain(subset, crowd_labels, np.random.default_rng(1))

    def test_retrain_label_mismatch_raises(self, fitted_model, split):
        train, _ = split
        subset = train.subset(range(4))
        with pytest.raises(ValueError):
            fitted_model.retrain(subset, np.array([0, 1]), np.random.default_rng(1))


class TestUnfittedBehaviour:
    @pytest.mark.parametrize("name", ["VGG16", "BoVW", "DDM"])
    def test_predict_before_fit_raises(self, name, split):
        _, test = split
        model = create_model(name, **TINY[name])
        with pytest.raises(RuntimeError):
            model.predict_proba(test)


class TestVGG:
    def test_bad_image_size_raises(self):
        with pytest.raises(ValueError):
            VGGModel(image_size=30)

    def test_fine_tune_lr_reduced_after_fit(self, split):
        train, _ = split
        model = VGGModel(**TINY["VGG16"])
        model.fit(train, np.random.default_rng(2))
        assert model._trainer.optimizer.lr == pytest.approx(model.lr * 0.25)


class TestBoVW:
    def test_feature_cache_reused(self, split):
        train, test = split
        model = BoVWModel(**TINY["BoVW"])
        model.fit(train, np.random.default_rng(3))
        model.predict(test)
        cached = len(model._feature_cache)
        model.predict(test)  # second pass: no new encodes
        assert len(model._feature_cache) == cached

    def test_intensity_features_lengthen_vector(self, split):
        train, _ = split
        with_intensity = BoVWModel(**TINY["BoVW"], include_intensity=True)
        without = BoVWModel(**TINY["BoVW"], include_intensity=False)
        with_intensity.fit(train, np.random.default_rng(4))
        without.fit(train, np.random.default_rng(4))
        a = with_intensity._features(train.subset([0])).shape[1]
        b = without._features(train.subset([0])).shape[1]
        assert a == b + 8


class TestDDM:
    def test_heatmaps_shape(self, split):
        train, test = split
        model = DDMModel(**TINY["DDM"])
        model.fit(train, np.random.default_rng(5))
        maps = model.heatmaps(test.subset(range(3)))
        assert maps.shape[0] == 3
        assert maps.min() >= 0.0 and maps.max() <= 1.0 + 1e-9

    def test_bad_image_size_raises(self):
        with pytest.raises(ValueError):
            DDMModel(image_size=30)


class TestRegistry:
    def test_default_committee(self):
        assert default_committee_names() == ("VGG16", "BoVW", "DDM")

    def test_available_contains_defaults(self):
        for name in default_committee_names():
            assert name in available_models()

    def test_create_unknown_raises(self):
        with pytest.raises(KeyError):
            create_model("nope")

    def test_register_custom(self):
        class Custom(DDAModel):
            name = "custom"

            def fit(self, dataset, rng):
                return self

            def predict_proba(self, dataset):
                return np.full((len(dataset), 3), 1 / 3)

            def retrain(self, dataset, labels, rng):
                return self

        register_model("custom-test", Custom)
        model = create_model("custom-test")
        assert isinstance(model, Custom)

    def test_register_empty_name_raises(self):
        with pytest.raises(ValueError):
            register_model("", VGGModel)


class TestModelVersioning:
    """Versions drive cache invalidation: they must move on every update."""

    def test_next_model_version_monotonic(self):
        from repro.models.base import next_model_version

        a = next_model_version()
        b = next_model_version()
        assert b > a
        # A minimum (e.g. a rolled-back snapshot's version) is always
        # exceeded, so restored models can never collide with candidates.
        assert next_model_version(minimum=b + 100) > b + 100

    def test_fit_and_retrain_bump_version(self, fitted_model, split):
        train, _ = split
        after_fit = fitted_model.model_version
        assert after_fit > 0
        labels = train.labels()[:10]
        fitted_model.retrain(
            train.subset(range(10)), labels, np.random.default_rng(31)
        )
        assert fitted_model.model_version > after_fit

    def test_bovw_feature_version_frozen_by_retrain(self, split):
        """retrain() keeps the codebook, so feature encodings stay valid."""
        train, _ = split
        model = BoVWModel(**TINY["BoVW"])
        model.fit(train, np.random.default_rng(41))
        feature_version = model.feature_version
        model.retrain(
            train.subset(range(8)),
            train.labels()[:8],
            np.random.default_rng(42),
        )
        assert model.feature_version == feature_version
        model.fit(train, np.random.default_rng(43))
        assert model.feature_version > feature_version

    def test_feature_cache_size_validated(self):
        with pytest.raises(ValueError):
            BoVWModel(**TINY["BoVW"], feature_cache_size=0)


class TestRetrainDeterminism:
    """retrain() must be a function of (weights, data, the passed rng).

    Historically the experts discarded the passed generator and drew from
    their trainers' internal streams, so two identically-fitted models
    could diverge after retraining depending on how far each stream had
    advanced.  Cloned models retrained with equal seeds must now match bit
    for bit, and the passed rng must actually steer the fine-tuning.
    """

    def _clones(self, fitted_model, n=3):
        import pickle

        blob = pickle.dumps(fitted_model)
        return [pickle.loads(blob) for _ in range(n)]

    def test_equal_seeds_give_bitwise_equal_experts(self, fitted_model, split):
        train, test = split
        # More samples than one minibatch, so shuffle order has teeth.
        subset = train.subset(range(40))
        labels = train.labels()[:40]
        a, b, c = self._clones(fitted_model)
        a.retrain(subset, labels, np.random.default_rng(77))
        b.retrain(subset, labels, np.random.default_rng(77))
        c.retrain(subset, labels, np.random.default_rng(78))
        pa, pb, pc = (m.predict_proba(test) for m in (a, b, c))
        np.testing.assert_array_equal(pa, pb)
        # ...and not vacuously: a different seed shuffles minibatches (and
        # dropout) differently, so the fine-tuned experts genuinely move.
        assert not np.array_equal(pa, pc)


class TestDDMHeadSchedule:
    def _spy_head_fit(self, model):
        calls = []
        original = model._head_trainer.fit

        def spy(x, y, epochs, **kwargs):
            calls.append(epochs)
            return original(x, y, epochs=epochs, **kwargs)

        model._head_trainer.fit = spy
        return calls

    def _fitted_ddm(self, split, **kwargs):
        train, _ = split
        model = DDMModel(**{**TINY["DDM"], **kwargs})
        model.fit(train, np.random.default_rng(51))
        return model, train

    def test_explicit_head_retrain_epochs_used(self, split):
        model, train = self._fitted_ddm(split, head_retrain_epochs=7)
        calls = self._spy_head_fit(model)
        model.retrain(
            train.subset(range(6)), train.labels()[:6], np.random.default_rng(1)
        )
        assert calls == [7]

    def test_default_head_schedule_tracks_backbone(self, split):
        model, train = self._fitted_ddm(split)
        calls = self._spy_head_fit(model)
        subset, labels = train.subset(range(6)), train.labels()[:6]
        model.retrain(subset, labels, np.random.default_rng(1))
        assert calls == [max(model.retrain_epochs * 2, 2)]
        # The warm-start epochs override flows into the head schedule too.
        model.retrain(subset, labels, np.random.default_rng(2), epochs=3)
        assert calls[-1] == 6

    def test_invalid_head_retrain_epochs_raises(self):
        with pytest.raises(ValueError):
            DDMModel(head_retrain_epochs=0)
