"""Tests for repro.vision.gradcam."""

import numpy as np
import pytest

from repro.nn.layers import Conv2D, Dense, Flatten, MaxPool2D, ReLU
from repro.nn.model import Sequential
from repro.vision.gradcam import GradCAM


@pytest.fixture
def cnn(rng):
    return Sequential(
        [
            Conv2D(3, 4, kernel=3, rng=rng, pad=1),
            ReLU(),
            MaxPool2D(2),
            Conv2D(4, 6, kernel=3, rng=rng, pad=1),
            ReLU(),
            Flatten(),
            Dense(6 * 8 * 8, 3, rng),
        ]
    )


class TestGradCAM:
    def test_default_targets_last_conv(self, cnn):
        cam = GradCAM(cnn)
        assert cam.target_layer == 3

    def test_heatmap_shape_matches_target_layer(self, cnn, rng):
        cam = GradCAM(cnn)
        x = rng.random((2, 3, 16, 16))
        maps = cam.heatmaps(x, np.array([0, 1]))
        assert maps.shape == (2, 8, 8)  # after the 2x pool

    def test_heatmaps_in_unit_range(self, cnn, rng):
        cam = GradCAM(cnn)
        maps = cam.heatmaps(rng.random((3, 3, 16, 16)), np.array([0, 1, 2]))
        assert maps.min() >= 0.0
        assert maps.max() <= 1.0 + 1e-9

    def test_heatmap_mass_bounds(self, cnn, rng):
        cam = GradCAM(cnn)
        mass = cam.heatmap_mass(rng.random((2, 3, 16, 16)), np.array([0, 0]))
        assert mass.shape == (2,)
        assert np.all((0.0 <= mass) & (mass <= 1.0))

    def test_explicit_target_layer(self, cnn, rng):
        cam = GradCAM(cnn, target_layer=0)
        maps = cam.heatmaps(rng.random((1, 3, 16, 16)), np.array([0]))
        assert maps.shape == (1, 16, 16)

    def test_no_conv_model_raises(self, rng):
        mlp = Sequential([Dense(4, 3, rng)])
        with pytest.raises(ValueError):
            GradCAM(mlp)

    def test_out_of_range_target_raises(self, cnn):
        with pytest.raises(ValueError):
            GradCAM(cnn, target_layer=99)

    def test_class_idx_length_mismatch_raises(self, cnn, rng):
        cam = GradCAM(cnn)
        with pytest.raises(ValueError):
            cam.heatmaps(rng.random((2, 3, 16, 16)), np.array([0]))

    def test_class_idx_out_of_range_raises(self, cnn, rng):
        cam = GradCAM(cnn)
        with pytest.raises(ValueError):
            cam.heatmaps(rng.random((1, 3, 16, 16)), np.array([7]))

    def test_different_classes_give_different_maps(self, cnn, rng):
        cam = GradCAM(cnn)
        x = rng.random((1, 3, 16, 16))
        a = cam.heatmaps(x, np.array([0]))
        b = cam.heatmaps(x, np.array([1]))
        assert not np.allclose(a, b)


class TestHeatmapMasses:
    """The batched single-forward path must match per-call heatmap_mass."""

    def test_matches_sequential_heatmap_mass(self, cnn, rng):
        cam = GradCAM(cnn)
        x = rng.random((3, 3, 16, 16))
        rows = [np.array([0, 1, 2]), np.array([1, 1, 0])]
        masses, logits = cam.heatmap_masses(x, rows)
        assert len(masses) == 2
        for row, mass in zip(rows, masses):
            np.testing.assert_array_equal(mass, cam.heatmap_mass(x, row))

    def test_logits_match_inference_forward(self, cnn, rng):
        cam = GradCAM(cnn)
        x = rng.random((2, 3, 16, 16))
        _, logits = cam.heatmap_masses(x, [np.array([0, 1])])
        np.testing.assert_array_equal(logits, cnn.forward(x, training=False))

    def test_row_length_mismatch_raises(self, cnn, rng):
        cam = GradCAM(cnn)
        with pytest.raises(ValueError):
            cam.heatmap_masses(rng.random((2, 3, 16, 16)), [np.array([0])])

    def test_row_class_out_of_range_raises(self, cnn, rng):
        cam = GradCAM(cnn)
        with pytest.raises(ValueError):
            cam.heatmap_masses(
                rng.random((1, 3, 16, 16)), [np.array([0]), np.array([7])]
            )
