"""Tests for repro.data.dataset."""

import numpy as np
import pytest

from repro.data.dataset import (
    DisasterDataset,
    build_dataset,
    train_test_split,
)
from repro.data.metadata import DamageLabel, FailureArchetype


class TestBuildDataset:
    def test_total_count(self, small_dataset):
        assert len(small_dataset) == 90

    def test_classes_roughly_balanced(self, small_dataset):
        counts = small_dataset.class_counts()
        values = list(counts.values())
        assert max(values) - min(values) <= 8

    def test_paper_scale_balance(self):
        dataset = build_dataset(n_images=960, rng=np.random.default_rng(0))
        counts = dataset.class_counts()
        for count in counts.values():
            assert abs(count - 320) <= 20

    def test_archetypes_present(self, small_dataset):
        counts = small_dataset.archetype_counts()
        assert counts[FailureArchetype.FAKE] > 0
        assert counts[FailureArchetype.LOW_RESOLUTION] > 0
        assert counts[FailureArchetype.NONE] > counts[FailureArchetype.FAKE]

    def test_archetype_fraction_respected(self):
        dataset = build_dataset(
            n_images=200, archetype_fraction=0.3, rng=np.random.default_rng(1)
        )
        counts = dataset.archetype_counts()
        n_arch = sum(v for k, v in counts.items() if k is not FailureArchetype.NONE)
        assert n_arch == pytest.approx(60, abs=4)

    def test_zero_archetypes(self):
        dataset = build_dataset(
            n_images=60, archetype_fraction=0.0, rng=np.random.default_rng(2)
        )
        counts = dataset.archetype_counts()
        assert counts[FailureArchetype.NONE] == 60

    def test_unique_image_ids(self, small_dataset):
        ids = [img.image_id for img in small_dataset]
        assert len(set(ids)) == len(ids)

    def test_invalid_fraction_raises(self):
        with pytest.raises(ValueError):
            build_dataset(n_images=50, archetype_fraction=0.9)

    def test_too_few_images_raises(self):
        with pytest.raises(ValueError):
            build_dataset(n_images=2)

    def test_deterministic_given_seed(self):
        a = build_dataset(n_images=30, rng=np.random.default_rng(5))
        b = build_dataset(n_images=30, rng=np.random.default_rng(5))
        np.testing.assert_array_equal(a.labels(), b.labels())
        np.testing.assert_allclose(a[0].pixels, b[0].pixels)


class TestDatasetContainer:
    def test_pixels_nchw_shape(self, small_dataset):
        batch = small_dataset.pixels_nchw()
        assert batch.shape == (90, 3, 32, 32)

    def test_pixels_hwc_shape(self, small_dataset):
        batch = small_dataset.pixels_hwc()
        assert batch.shape == (90, 32, 32, 3)

    def test_nchw_hwc_consistent(self, small_dataset):
        nchw = small_dataset.pixels_nchw()
        hwc = small_dataset.pixels_hwc()
        np.testing.assert_array_equal(nchw.transpose(0, 2, 3, 1), hwc)

    def test_labels_align_with_metadata(self, small_dataset):
        labels = small_dataset.labels()
        for i, meta in enumerate(small_dataset.metadata()):
            assert labels[i] == int(meta.true_label)

    def test_subset_preserves_order(self, small_dataset):
        sub = small_dataset.subset([5, 2, 9])
        assert [img.image_id for img in sub] == [
            small_dataset[5].image_id,
            small_dataset[2].image_id,
            small_dataset[9].image_id,
        ]

    def test_empty_dataset_pixel_access_raises(self):
        with pytest.raises(ValueError):
            DisasterDataset([]).pixels_nchw()


class TestTrainTestSplit:
    def test_sizes_exact(self, small_dataset, rng):
        train, test = train_test_split(small_dataset, n_train=60, rng=rng)
        assert len(train) == 60
        assert len(test) == 30

    def test_no_overlap_full_coverage(self, small_dataset, rng):
        train, test = train_test_split(small_dataset, n_train=60, rng=rng)
        train_ids = {img.image_id for img in train}
        test_ids = {img.image_id for img in test}
        assert not train_ids & test_ids
        assert len(train_ids | test_ids) == 90

    def test_stratified(self, rng):
        dataset = build_dataset(n_images=300, rng=rng)
        train, test = train_test_split(dataset, n_train=200, rng=rng)
        for label in DamageLabel:
            total = dataset.class_counts()[label]
            in_train = train.class_counts()[label]
            assert in_train == pytest.approx(total * 2 / 3, abs=6)

    def test_invalid_n_train_raises(self, small_dataset, rng):
        with pytest.raises(ValueError):
            train_test_split(small_dataset, n_train=0, rng=rng)
        with pytest.raises(ValueError):
            train_test_split(small_dataset, n_train=90, rng=rng)
