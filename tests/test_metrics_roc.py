"""Tests for repro.metrics.roc."""

import numpy as np
import pytest

from repro.metrics.roc import auc, binary_roc, macro_average_roc


class TestBinaryRoc:
    def test_perfect_separation_auc_one(self):
        y = np.array([0, 0, 1, 1])
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        curve = binary_roc(y, scores)
        assert curve.auc == pytest.approx(1.0)

    def test_inverted_scores_auc_zero(self):
        y = np.array([0, 0, 1, 1])
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        assert binary_roc(y, scores).auc == pytest.approx(0.0)

    def test_random_scores_auc_near_half(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 2, size=4000)
        scores = rng.random(4000)
        assert binary_roc(y, scores).auc == pytest.approx(0.5, abs=0.05)

    def test_curve_endpoints(self):
        y = np.array([0, 1, 0, 1])
        curve = binary_roc(y, np.array([0.3, 0.6, 0.5, 0.2]))
        assert curve.fpr[0] == 0.0 and curve.tpr[0] == 0.0
        assert curve.fpr[-1] == 1.0 and curve.tpr[-1] == 1.0

    def test_monotone_nondecreasing(self):
        rng = np.random.default_rng(1)
        y = rng.integers(0, 2, size=50)
        curve = binary_roc(y, rng.random(50))
        assert np.all(np.diff(curve.fpr) >= 0)
        assert np.all(np.diff(curve.tpr) >= 0)

    def test_tied_scores_collapse(self):
        y = np.array([0, 1, 0, 1])
        curve = binary_roc(y, np.array([0.5, 0.5, 0.5, 0.5]))
        # All tied: the only operating points are (0,0) and (1,1).
        assert curve.auc == pytest.approx(0.5)

    def test_single_class_raises(self):
        with pytest.raises(ValueError):
            binary_roc(np.array([1, 1]), np.array([0.1, 0.2]))

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            binary_roc(np.array([0, 1]), np.array([0.5]))


class TestAuc:
    def test_unit_square_diagonal(self):
        grid = np.linspace(0, 1, 11)
        assert auc(grid, grid) == pytest.approx(0.5)

    def test_step_function(self):
        assert auc(np.array([0.0, 0.0, 1.0]), np.array([0.0, 1.0, 1.0])) == (
            pytest.approx(1.0)
        )

    def test_requires_two_points(self):
        with pytest.raises(ValueError):
            auc(np.array([0.5]), np.array([0.5]))


class TestMacroAverageRoc:
    def test_perfect_classifier(self):
        y = np.array([0, 1, 2, 0, 1, 2])
        scores = np.eye(3)[y]
        curve = macro_average_roc(y, scores)
        assert curve.auc == pytest.approx(1.0, abs=0.02)

    def test_uniform_scores_near_half(self):
        rng = np.random.default_rng(3)
        y = rng.integers(0, 3, size=3000)
        scores = rng.random((3000, 3))
        curve = macro_average_roc(y, scores)
        assert curve.auc == pytest.approx(0.5, abs=0.05)

    def test_skips_absent_class(self):
        y = np.array([0, 1, 0, 1])
        scores = np.array(
            [[0.8, 0.1, 0.1], [0.1, 0.8, 0.1], [0.7, 0.2, 0.1], [0.2, 0.7, 0.1]]
        )
        curve = macro_average_roc(y, scores)  # class 2 absent
        assert curve.auc == pytest.approx(1.0, abs=0.02)

    def test_bad_shape_raises(self):
        with pytest.raises(ValueError):
            macro_average_roc(np.array([0, 1]), np.array([0.5, 0.5]))

    def test_grid_size_controls_resolution(self):
        y = np.array([0, 1, 0, 1])
        scores = np.array([[0.9, 0.1], [0.2, 0.8], [0.6, 0.4], [0.3, 0.7]])
        curve = macro_average_roc(y, scores, grid_size=21)
        assert curve.fpr.shape == (21,)
