"""Tests for repro.vision.bovw."""

import numpy as np
import pytest

from repro.vision.bovw import BoVWEncoder


@pytest.fixture(scope="module")
def fitted_encoder():
    rng = np.random.default_rng(3)
    images = rng.random((10, 32, 32, 3))
    encoder = BoVWEncoder(vocabulary_size=8, include_global=False)
    encoder.fit(images, rng)
    return encoder


class TestBoVWEncoder:
    def test_fit_marks_fitted(self, fitted_encoder):
        assert fitted_encoder.is_fitted

    def test_unfitted_encode_raises(self, rng):
        encoder = BoVWEncoder(vocabulary_size=4)
        with pytest.raises(RuntimeError):
            encoder.encode(rng.random((32, 32, 3)))

    def test_encode_is_normalized_histogram(self, fitted_encoder, rng):
        features = fitted_encoder.encode(rng.random((32, 32, 3)))
        assert features.shape == (8,)
        assert features.sum() == pytest.approx(1.0)
        assert np.all(features >= 0)

    def test_encode_batch_stacks(self, fitted_encoder, rng):
        batch = fitted_encoder.encode_batch(rng.random((3, 32, 32, 3)))
        assert batch.shape == (3, 8)

    def test_feature_dim_property(self, fitted_encoder):
        assert fitted_encoder.feature_dim == 8

    def test_feature_dim_none_before_fit(self):
        assert BoVWEncoder(vocabulary_size=4).feature_dim is None

    def test_global_features_appended(self, rng):
        images = rng.random((8, 32, 32, 3))
        encoder = BoVWEncoder(vocabulary_size=4, include_global=True)
        encoder.fit(images, rng)
        features = encoder.encode(images[0])
        assert features.shape[0] == encoder.feature_dim
        assert features.shape[0] > 4

    def test_deterministic_encoding(self, fitted_encoder, rng):
        image = rng.random((32, 32, 3))
        np.testing.assert_array_equal(
            fitted_encoder.encode(image), fitted_encoder.encode(image)
        )

    def test_invalid_vocabulary_raises(self):
        with pytest.raises(ValueError):
            BoVWEncoder(vocabulary_size=0)

    def test_vocabulary_larger_than_patches_raises(self, rng):
        # One 32x32 image yields 49 patches < 64 words.
        encoder = BoVWEncoder(vocabulary_size=64)
        with pytest.raises(ValueError):
            encoder.fit(rng.random((1, 32, 32, 3)), rng)

    def test_different_textures_encode_differently(self, fitted_encoder, rng):
        smooth = np.full((32, 32, 3), 0.5)
        noisy = rng.random((32, 32, 3))
        assert not np.allclose(
            fitted_encoder.encode(smooth), fitted_encoder.encode(noisy)
        )


class TestEncodeBatchParity:
    """encode_batch must reproduce per-image encode() bit-for-bit."""

    def test_matches_per_image_encode(self, fitted_encoder, rng):
        images = rng.random((6, 32, 32, 3))
        batched = fitted_encoder.encode_batch(images)
        expected = np.stack([fitted_encoder.encode(i) for i in images])
        np.testing.assert_array_equal(batched, expected)

    def test_with_global_features(self, rng):
        images = rng.random((8, 32, 32, 3))
        encoder = BoVWEncoder(vocabulary_size=8, include_global=True)
        encoder.fit(images, np.random.default_rng(11))
        batched = encoder.encode_batch(images[:4])
        expected = np.stack([encoder.encode(i) for i in images[:4]])
        np.testing.assert_array_equal(batched, expected)

    def test_empty_batch(self, fitted_encoder):
        encoded = fitted_encoder.encode_batch(np.empty((0, 32, 32, 3)))
        assert encoded.shape[0] == 0
