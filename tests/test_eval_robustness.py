"""Tests for repro.eval.robustness (multi-seed aggregation)."""

import numpy as np
import pytest

from repro.eval.baselines import SchemeResult
from repro.eval.robustness import (
    run_robustness_study,
    summarize_across_seeds,
)


def make_result(name, accuracy, n=40, rng=None, delay=None):
    """A synthetic result with a chosen accuracy."""
    rng = rng or np.random.default_rng(0)
    y_true = rng.integers(0, 3, size=n)
    y_pred = y_true.copy()
    n_wrong = int(round((1 - accuracy) * n))
    flip = rng.choice(n, size=n_wrong, replace=False)
    y_pred[flip] = (y_true[flip] + 1) % 3
    return SchemeResult(
        name=name,
        y_true=y_true,
        y_pred=y_pred,
        scores=np.full((n, 3), 1 / 3),
        crowd_delays=[delay] if delay is not None else [],
        crowd_delay_contexts=[],
        cost_cents=0.0,
    )


@pytest.fixture
def two_seed_results(rng):
    return {
        1: {
            "CrowdLearn": make_result("CrowdLearn", 0.9, rng=rng, delay=300.0),
            "VGG16": make_result("VGG16", 0.7, rng=rng),
        },
        2: {
            "CrowdLearn": make_result("CrowdLearn", 0.85, rng=rng, delay=350.0),
            "VGG16": make_result("VGG16", 0.75, rng=rng),
        },
    }


class TestSummarize:
    def test_means_and_stds(self, two_seed_results):
        study = summarize_across_seeds(two_seed_results)
        assert study.seeds == (1, 2)
        assert study.mean("CrowdLearn", "accuracy") == pytest.approx(
            0.875, abs=0.02
        )
        assert study.std("CrowdLearn", "accuracy") > 0

    def test_win_rate(self, two_seed_results):
        study = summarize_across_seeds(two_seed_results)
        assert study.win_rate("CrowdLearn") == 1.0
        assert study.win_rate("VGG16") == 0.0

    def test_crowd_delay_nan_for_ai_only(self, two_seed_results):
        study = summarize_across_seeds(two_seed_results)
        assert np.isnan(study.values["VGG16"]["crowd_delay"]).all()
        assert study.mean("CrowdLearn", "crowd_delay") == pytest.approx(325.0)

    def test_render_contains_schemes(self, two_seed_results):
        text = summarize_across_seeds(two_seed_results).render()
        assert "CrowdLearn" in text and "Win rate" in text and "±" in text

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize_across_seeds({})

    def test_mismatched_schemes_raise(self, two_seed_results):
        del two_seed_results[2]["VGG16"]
        with pytest.raises(ValueError, match="different scheme set"):
            summarize_across_seeds(two_seed_results)

    def test_win_rate_ties_count_for_all_tied_schemes(self, rng):
        """A seed where two schemes tie for best is a win for both."""
        shared = make_result("A", 0.9, rng=np.random.default_rng(3))
        tied = {
            1: {
                "A": shared,
                "B": make_result(  # identical predictions -> identical accuracy
                    "B", 0.9, rng=np.random.default_rng(3)
                ),
                "C": make_result("C", 0.5, rng=rng),
            },
        }
        study = summarize_across_seeds(tied)
        assert study.win_rate("A") == 1.0
        assert study.win_rate("B") == 1.0
        assert study.win_rate("C") == 0.0


class TestRunStudy:
    def test_fast_two_seed_study(self):
        """End to end at smoke scale: the study runs and aggregates."""
        study = run_robustness_study(seeds=(51, 52), fast=True)
        assert study.seeds == (51, 52)
        assert set(study.values) == {
            "CrowdLearn", "VGG16", "BoVW", "DDM", "Ensemble",
            "Hybrid-Para", "Hybrid-AL",
        }
        for scheme in study.values:
            assert len(study.values[scheme]["accuracy"]) == 2
            assert 0.0 <= study.mean(scheme, "accuracy") <= 1.0
        assert "Robustness over seeds" in study.render()

    def test_no_seeds_raises(self):
        with pytest.raises(ValueError):
            run_robustness_study(seeds=())
