"""Tests for repro.truth.tdem (EM truth discovery)."""

import numpy as np
import pytest

from repro.crowd.tasks import (
    CrowdQuery,
    QueryResult,
    QuestionnaireAnswers,
    WorkerResponse,
)
from repro.data.metadata import DamageLabel, SceneType
from repro.truth.tdem import TruthDiscoveryEM, aggregate_by_tdem
from repro.utils.clock import TemporalContext


def synthetic_results(rng, n_queries, worker_reliability, n_classes=3):
    """Queries answered by a fixed worker panel with known reliabilities."""
    truths = rng.integers(0, n_classes, size=n_queries)
    results = []
    for q in range(n_queries):
        responses = []
        for worker_id, reliability in enumerate(worker_reliability):
            if rng.random() < reliability:
                label = truths[q]
            else:
                label = (truths[q] + rng.integers(1, n_classes)) % n_classes
            responses.append(
                WorkerResponse(
                    worker_id=worker_id,
                    label=DamageLabel(int(label)),
                    questionnaire=QuestionnaireAnswers(
                        says_fake=False,
                        scene=SceneType.ROAD,
                        says_people_in_danger=False,
                    ),
                    delay_seconds=1.0,
                )
            )
        results.append(
            QueryResult(
                query=CrowdQuery(q, q, 1.0, TemporalContext.MORNING),
                responses=responses,
            )
        )
    return results, truths


class TestTruthDiscoveryEM:
    def test_recovers_labels_with_reliable_panel(self, rng):
        results, truths = synthetic_results(rng, 60, [0.9, 0.85, 0.8, 0.75, 0.9])
        labels = TruthDiscoveryEM().aggregate(results)
        assert np.mean(labels == truths) >= 0.9

    def test_estimates_worker_reliability_ordering(self, rng):
        reliabilities = [0.95, 0.6, 0.95, 0.95, 0.95]
        results, _ = synthetic_results(rng, 120, reliabilities)
        _, estimated = TruthDiscoveryEM().fit(results)
        # The weak worker must receive the lowest estimated reliability.
        assert min(estimated, key=estimated.get) == 1

    def test_beats_voting_with_one_dominant_expert(self, rng):
        # One excellent worker among four mediocre ones: EM learns to trust
        # the expert where plain voting cannot.  (Workers at chance level
        # would be unidentifiable for the one-coin model, so the mediocre
        # ones sit at 0.5 — clearly above the 1/3 chance floor.)
        reliabilities = [0.95, 0.5, 0.5, 0.5, 0.5]
        results, truths = synthetic_results(rng, 150, reliabilities)
        from repro.truth.voting import aggregate_by_voting

        em_acc = np.mean(TruthDiscoveryEM().aggregate(results) == truths)
        vote_acc = np.mean(aggregate_by_voting(results) == truths)
        assert em_acc > vote_acc

    def test_posteriors_are_distributions(self, rng):
        results, _ = synthetic_results(rng, 20, [0.8, 0.8, 0.8])
        posteriors, _ = TruthDiscoveryEM().fit(results)
        assert posteriors.shape == (20, 3)
        np.testing.assert_allclose(posteriors.sum(axis=1), 1.0)

    def test_convergence_is_deterministic(self, rng):
        results, _ = synthetic_results(rng, 30, [0.8, 0.7, 0.9])
        a = TruthDiscoveryEM().aggregate(results)
        b = TruthDiscoveryEM().aggregate(results)
        np.testing.assert_array_equal(a, b)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            TruthDiscoveryEM().aggregate([])

    def test_query_without_responses_raises(self):
        empty = QueryResult(query=CrowdQuery(0, 0, 1.0, TemporalContext.MORNING))
        with pytest.raises(ValueError):
            TruthDiscoveryEM().aggregate([empty])

    def test_convenience_wrapper(self, rng):
        results, truths = synthetic_results(rng, 40, [0.9, 0.9, 0.9])
        labels = aggregate_by_tdem(results)
        assert np.mean(labels == truths) > 0.9
