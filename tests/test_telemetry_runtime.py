"""Tests for repro.telemetry.runtime (facade, no-op singleton, default)."""

import pickle

import pytest

from repro.telemetry import (
    NULL_TELEMETRY,
    ManualClock,
    NullTelemetry,
    Telemetry,
    get_telemetry,
    set_telemetry,
    use_telemetry,
)


class TestTelemetryFacade:
    def test_span_feeds_span_seconds_histogram(self):
        tel = Telemetry(clock=ManualClock(tick_seconds=1.0))
        with tel.span("stage.a"):
            pass
        hist = tel.registry.get("span_seconds", stage="stage.a")
        assert hist is not None
        assert hist.count == 1
        assert hist.sum == 1.0

    def test_event_is_timestamped(self):
        tel = Telemetry(clock=ManualClock(tick_seconds=1.0))
        entry = tel.event("hello", x=1)
        assert entry["event"] == "hello"
        assert entry["x"] == 1
        assert entry["time"] == 0.0
        assert tel.events == [entry]

    def test_merge_counters(self):
        tel = Telemetry(clock=ManualClock())
        tel.merge_counters({"retries_total": 2, "refunds_total": 0},
                           prefix="resilience_")
        assert tel.registry.value("resilience_retries_total") == 2.0
        # zero values still register the instrument (full catalog)
        assert tel.registry.get("resilience_refunds_total") is not None

    def test_snapshot(self):
        tel = Telemetry(clock=ManualClock(tick_seconds=1.0))
        with tel.span("s"):
            pass
        tel.event("e")
        snap = tel.snapshot()
        assert snap["n_spans"] == 1
        assert snap["n_events"] == 1
        assert snap["stages"]["s"]["count"] == 1
        assert any(
            i["name"] == "span_seconds"
            for i in snap["metrics"]["instruments"]
        )

    def test_picklable_with_history(self):
        tel = Telemetry(clock=ManualClock())
        with tel.span("s"):
            pass
        tel.counter("c").inc(3)
        restored = pickle.loads(pickle.dumps(tel))
        assert [s.name for s in restored.tracer.spans] == ["s"]
        assert restored.registry.value("c") == 3.0
        # and it still works after the round trip
        with restored.span("t"):
            pass
        assert len(restored.tracer.spans) == 2


class TestNullTelemetry:
    def test_singleton_identity(self):
        assert isinstance(NULL_TELEMETRY, NullTelemetry)
        assert NULL_TELEMETRY.enabled is False

    def test_pickle_returns_singleton(self):
        assert pickle.loads(pickle.dumps(NULL_TELEMETRY)) is NULL_TELEMETRY

    def test_operations_record_nothing(self):
        with NULL_TELEMETRY.span("s", a=1) as span:
            span.set(b=2)
        NULL_TELEMETRY.counter("c").inc(5)
        NULL_TELEMETRY.gauge("g").set(1.0)
        NULL_TELEMETRY.histogram("h").observe(1.0)
        NULL_TELEMETRY.event("e", x=1)
        NULL_TELEMETRY.merge_counters({"a": 1})
        assert NULL_TELEMETRY.tracer.spans == []
        assert len(NULL_TELEMETRY.registry) == 0
        assert NULL_TELEMETRY.events == []

    def test_shared_noop_objects(self):
        assert NULL_TELEMETRY.span("a") is NULL_TELEMETRY.span("b")
        assert NULL_TELEMETRY.counter("a") is NULL_TELEMETRY.histogram("b")


class TestProcessDefault:
    def test_default_is_null(self):
        assert get_telemetry() is NULL_TELEMETRY

    def test_set_and_restore(self):
        tel = Telemetry(clock=ManualClock())
        previous = set_telemetry(tel)
        try:
            assert get_telemetry() is tel
        finally:
            set_telemetry(previous)
        assert get_telemetry() is previous

    def test_set_none_restores_null(self):
        previous = set_telemetry(None)
        try:
            assert get_telemetry() is NULL_TELEMETRY
        finally:
            set_telemetry(previous)

    def test_use_telemetry_scoped(self):
        tel = Telemetry(clock=ManualClock())
        before = get_telemetry()
        with use_telemetry(tel) as active:
            assert active is tel
            assert get_telemetry() is tel
        assert get_telemetry() is before

    def test_use_telemetry_restores_on_error(self):
        tel = Telemetry(clock=ManualClock())
        before = get_telemetry()
        with pytest.raises(RuntimeError):
            with use_telemetry(tel):
                raise RuntimeError("boom")
        assert get_telemetry() is before
