"""Integration: every table/figure driver runs end-to-end in fast mode."""

import math

import numpy as np
import pytest

from repro.eval.experiments import (
    run_budget_sweep,
    run_fig5,
    run_fig6,
    run_fig8,
    run_fig9,
    run_table1,
    run_table2_suite,
)
from repro.eval.runner import prepare
from repro.utils.clock import TemporalContext


@pytest.fixture(scope="module")
def setup():
    return prepare(seed=41, fast=True)


class TestPilotDrivers:
    def test_fig5_series_complete(self, setup):
        data = run_fig5(setup)
        for context in TemporalContext.ordered():
            series = data.delays[context]
            assert len(series) == len(data.incentive_levels)
            assert all(d > 0 for d in series)
        assert "Figure 5" in data.render()

    def test_fig6_quality_bounds(self, setup):
        data = run_fig6(setup)
        assert len(data.quality) == len(data.incentive_levels)
        assert all(0.0 <= q <= 1.0 for q in data.quality)
        assert "Figure 6" in data.render()


class TestTable1Driver:
    def test_all_schemes_and_contexts(self, setup):
        data = run_table1(setup, queries_per_context=10)
        assert set(data.accuracy) == {"CQC", "Voting", "TD-EM", "Filtering"}
        for scheme_accuracy in data.accuracy.values():
            assert set(scheme_accuracy) == {
                c.value for c in TemporalContext.ordered()
            }
            assert all(0.0 <= v <= 1.0 for v in scheme_accuracy.values())
        assert "Table I" in data.render()

    def test_overall_is_context_mean(self, setup):
        data = run_table1(setup, queries_per_context=8)
        manual = np.mean(list(data.accuracy["Voting"].values()))
        assert data.overall("Voting") == pytest.approx(manual)


class TestTable2Suite:
    def test_bundle_complete(self, setup):
        suite = run_table2_suite(setup)
        assert len(suite.table2.reports) == 7
        assert len(suite.fig7.curves) == 7
        assert len(suite.table3.algorithm_delay) == 7
        for text, marker in [
            (suite.table2.render(), "Table II"),
            (suite.fig7.render(), "Figure 7"),
            (suite.table3.render(), "Table III"),
        ]:
            assert marker in text

    def test_table3_na_for_ai_only(self, setup):
        suite = run_table2_suite(setup)
        assert suite.table3.crowd_delay["VGG16"] is None
        assert suite.table3.crowd_delay["CrowdLearn"] is not None
        assert "N/A" in suite.table3.render()


class TestFig8Driver:
    def test_three_policies_four_contexts(self, setup):
        data = run_fig8(setup)
        assert set(data.delays) == {"CrowdLearn (IPD)", "Fixed", "Random"}
        for per_context in data.delays.values():
            assert set(per_context) == set(TemporalContext.ordered())
            assert all(v > 0 for v in per_context.values())
        assert "Figure 8" in data.render()


class TestFig9Driver:
    def test_sweep_structure(self, setup):
        data = run_fig9(setup, fractions=(0.0, 0.5, 1.0))
        assert data.fractions == (0.0, 0.5, 1.0)
        for name in ("CrowdLearn", "Hybrid-AL", "Hybrid-Para", "Ensemble"):
            assert len(data.f1[name]) == 3
            assert all(0.0 <= v <= 1.0 for v in data.f1[name])
        assert "Figure 9" in data.render()

    def test_ensemble_reference_is_flat(self, setup):
        data = run_fig9(setup, fractions=(0.0, 1.0))
        assert data.f1["Ensemble"][0] == data.f1["Ensemble"][1]


class TestBudgetSweepDriver:
    def test_sweep_structure(self, setup):
        data = run_budget_sweep(setup, budgets_usd=(2.0, 16.0))
        assert data.budgets_usd == (2.0, 16.0)
        assert len(data.f1) == 2
        assert len(data.crowd_delay) == 2
        assert all(0.0 <= v <= 1.0 for v in data.f1)
        assert all(v > 0 or math.isnan(v) for v in data.crowd_delay)
        assert "Figure 10" in data.render_fig10()
        assert "Figure 11" in data.render_fig11()
