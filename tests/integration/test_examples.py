"""Integration: every example script runs end-to-end (fast demo mode)."""

import subprocess
import sys
from pathlib import Path

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, *args: str) -> str:
    """Run one example script and return its stdout (asserts exit 0)."""
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_examples_present(self):
        names = {p.name for p in EXAMPLES_DIR.glob("*.py")}
        assert {
            "quickstart.py",
            "earthquake_response.py",
            "incentive_tuning.py",
            "custom_committee.py",
        } <= names

    def test_quickstart(self):
        out = run_example("quickstart.py", "--seed", "71")
        assert "CrowdLearn final:" in out
        assert "Total crowd spend:" in out
        assert "cycle  0" in out

    def test_earthquake_response(self):
        out = run_example("earthquake_response.py", "--seed", "71")
        assert "Damage assessment quality per scheme" in out
        assert "Missed severe" in out
        assert "Failure report: VGG16" in out

    def test_incentive_tuning(self):
        out = run_example("incentive_tuning.py", "--seed", "71")
        assert "Pilot study:" in out
        assert "UCB-ALP (IPD): mean delay" in out
        assert "Random: mean delay" in out

    def test_custom_committee(self):
        out = run_example("custom_committee.py", "--seed", "71")
        assert "HistGBT" in out
        assert "CrowdLearn with the custom committee:" in out
