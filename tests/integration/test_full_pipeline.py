"""End-to-end integration: the whole evaluation pipeline in fast mode.

These tests run every scheme over a miniature deployment and assert the
*structural* invariants that must hold at any scale.  Paper-shape assertions
(who beats whom) are reserved for the full-scale benchmarks, since miniature
models are too noisy to rank reliably.
"""

import numpy as np
import pytest

from repro.eval.runner import prepare, run_all_schemes
from repro.metrics.classification import classification_report
from repro.metrics.roc import macro_average_roc


@pytest.fixture(scope="module")
def setup():
    return prepare(seed=17, fast=True)


@pytest.fixture(scope="module")
def results(setup):
    return run_all_schemes(setup)


EXPECTED_SCHEMES = {
    "CrowdLearn",
    "VGG16",
    "BoVW",
    "DDM",
    "Ensemble",
    "Hybrid-Para",
    "Hybrid-AL",
}


class TestAllSchemes:
    def test_all_seven_schemes_run(self, results):
        assert set(results) == EXPECTED_SCHEMES

    def test_aligned_outputs(self, results, setup):
        n = setup.config.n_cycles * setup.config.images_per_cycle
        for name, result in results.items():
            assert result.y_true.shape == (n,), name
            assert result.y_pred.shape == (n,), name
            assert result.scores.shape == (n, 3), name
            np.testing.assert_allclose(
                result.scores.sum(axis=1), 1.0, atol=1e-6, err_msg=name
            )

    def test_same_ground_truth_distribution(self, results):
        """All schemes consume identically-distributed streams."""
        counts = {
            name: np.bincount(r.y_true, minlength=3)
            for name, r in results.items()
        }
        reference = counts["CrowdLearn"].sum()
        for name, c in counts.items():
            assert c.sum() == reference, name

    def test_all_above_chance(self, results):
        for name, result in results.items():
            report = classification_report(result.y_true, result.y_pred)
            assert report.accuracy > 0.34, (name, report)

    def test_roc_computable_for_all(self, results):
        for name, result in results.items():
            curve = macro_average_roc(result.y_true, result.scores)
            assert 0.3 < curve.auc <= 1.0, name

    def test_crowd_schemes_record_delays(self, results):
        for name in ("CrowdLearn", "Hybrid-Para", "Hybrid-AL"):
            assert results[name].mean_crowd_delay() > 0, name
        for name in ("VGG16", "BoVW", "DDM", "Ensemble"):
            assert results[name].mean_crowd_delay() is None, name

    def test_crowd_schemes_spend_budget(self, results, setup):
        for name in ("CrowdLearn", "Hybrid-Para", "Hybrid-AL"):
            assert 0 < results[name].cost_cents <= setup.config.budget_cents + 1e-6

    def test_crowdlearn_not_worse_than_weakest_expert(self, results):
        """Even in the noisy fast regime the hybrid must not collapse."""
        crowdlearn = classification_report(
            results["CrowdLearn"].y_true, results["CrowdLearn"].y_pred
        ).accuracy
        weakest = min(
            classification_report(results[n].y_true, results[n].y_pred).accuracy
            for n in ("VGG16", "BoVW", "DDM")
        )
        assert crowdlearn >= weakest - 0.05


class TestDeterminism:
    def test_same_seed_reproduces_crowdlearn(self):
        from repro.eval.runner import build_crowdlearn

        accs = []
        for _ in range(2):
            setup = prepare(seed=23, fast=True)
            system = build_crowdlearn(setup)
            outcome = system.run(setup.make_stream("det"))
            accs.append(float(np.mean(outcome.y_true() == outcome.y_pred())))
        assert accs[0] == accs[1]

    def test_different_seed_differs(self):
        from repro.eval.runner import build_crowdlearn

        preds = []
        for seed in (23, 24):
            setup = prepare(seed=seed, fast=True)
            system = build_crowdlearn(setup)
            outcome = system.run(setup.make_stream("det"))
            preds.append(outcome.y_pred())
        assert not np.array_equal(preds[0], preds[1])
