"""Digest parity for the retrain fast paths (warm start + fused kernels).

Both optimizations promise *invisible speed*: fused kernels reorganize
memory traffic without touching arithmetic, and warm-start retraining with
``full_refit_every=1`` degenerates to the cold schedule.  Either claim is
checked the strongest way available — the full closed loop must produce a
bit-identical outcome digest.
"""

import dataclasses

import pytest

from repro.eval.persistence import run_outcome_digest
from repro.eval.runner import build_crowdlearn, prepare
from repro.models.vgg import VGGModel


@pytest.fixture(scope="module")
def setup():
    return prepare(seed=11, fast=True)


def _run(setup, name, **overrides):
    config = (
        dataclasses.replace(setup.config, **overrides)
        if overrides
        else setup.config
    )
    system = build_crowdlearn(setup, config=config, platform_name=name)
    outcome = system.run(setup.make_stream(name))
    return system, run_outcome_digest(outcome)


@pytest.fixture(scope="module")
def cold_digest(setup):
    _, digest = _run(setup, "retrain-parity")
    return digest


class TestFusedDigestParity:
    def test_fused_run_bit_identical_to_naive(self, setup, cold_digest):
        system, digest = _run(setup, "retrain-parity", fused_kernels=True)
        assert digest == cold_digest
        # ...and the parity is not vacuous: the CNN experts really fused.
        fused = [
            expert.model.is_fused
            for expert in system.committee.experts
            if isinstance(expert, VGGModel)
        ]
        assert fused and all(fused)


class TestWarmDigestParity:
    def test_refit_every_cycle_matches_cold(self, setup, cold_digest):
        """``full_refit_every=1`` must be bit-identical to cold retraining.

        Every cycle takes the periodic-refit branch, so the only deltas
        left are the warm-start bookkeeping (ReplayBuffer adds, counters)
        — none of which may leak into training.
        """
        system, digest = _run(
            setup,
            "retrain-parity",
            mic_warm_start=True,
            mic_full_refit_every=1,
        )
        assert digest == cold_digest
        stats = system.mic.retrain_stats()
        assert stats["warm_retrains"] == 0
        assert stats["full_refits"] > 0
        assert stats["replay_buffered"] > 0  # the warm path was armed


class TestWarmRunIntegrity:
    def test_warm_cached_matches_warm_uncached(self, setup):
        """No stale prediction may survive a warm retrain's version bump.

        Warm retrains bump ``model_version`` exactly like cold ones; if the
        PredictionCache ever served a pre-retrain array afterwards, the
        cached and uncached deployments would diverge.
        """
        overrides = dict(mic_warm_start=True, fused_kernels=True)
        cached_system, cached = _run(setup, "warm-fresh", **overrides)
        _, uncached = _run(
            setup, "warm-fresh", cache_enabled=False, **overrides
        )
        assert cached == uncached
        assert cached_system.cache.stats()["prediction_hits"] > 0
        assert cached_system.mic.retrain_stats()["warm_retrains"] > 0
