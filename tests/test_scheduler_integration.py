"""System-level tests for the virtual-time crowd scheduler.

Covers the deployment-shaped guarantees from the scheduler work:

- scheduler *off* is byte-identical to the synchronous loop (and so is
  scheduler *on* with a deadline no response can ever miss), verified
  both field-by-field and through the outcome digest the CI parity job
  uses;
- under the paper's delay model with a tightened cycle, late responses
  show up (concentrated at low-incentive contexts), all-late queries are
  charged rather than refunded, and harvested stragglers feed MIC
  retraining;
- a checkpoint taken with straggler responses still in flight resumes
  bit-for-bit, scheduler heap included.
"""

import dataclasses
import pickle

import pytest

from repro.core.config import CrowdLearnConfig
from repro.core.system import CrowdLearnSystem, RunOutcome
from repro.eval.persistence import (
    load_checkpoint,
    run_outcome_digest,
    save_checkpoint,
)
from repro.eval.runner import build_crowdlearn, prepare
from repro.telemetry.runtime import Telemetry, use_telemetry

from tests.test_guards_integration import assert_runs_equal


@pytest.fixture(scope="module")
def setup():
    return prepare(seed=0, fast=True)


def tight_config(setup) -> CrowdLearnConfig:
    """A cycle short enough that the paper's crowds cannot keep up.

    Mean delays run ~270-1150s depending on context and incentive
    (Figure 5), so a 150s sensing cycle makes lateness routine while a
    generous harvest window keeps the stragglers collectable within the
    fast run's eight cycles.
    """
    return dataclasses.replace(
        setup.config,
        scheduler_enabled=True,
        cycle_seconds=150.0,
        straggler_max_cycles=10,
    )


@pytest.fixture(scope="module")
def tight_run(setup):
    """One scheduler-on run under the tight cycle, telemetry attached."""
    telemetry = Telemetry()
    system = build_crowdlearn(
        setup,
        config=tight_config(setup),
        platform_name="sched-tight",
        telemetry=telemetry,
    )
    with use_telemetry(telemetry):
        outcome = system.run(setup.make_stream("sched-tight"))
    return system, outcome, telemetry


class TestSchedulerParity:
    def test_disabled_matches_synchronous_loop(self, setup):
        """Scheduler off twice -> identical digests (the CI parity check)."""
        digests = []
        for _ in range(2):
            system = build_crowdlearn(setup, platform_name="sched-parity")
            assert system.scheduler is None
            outcome = system.run(setup.make_stream("sched-parity"))
            digests.append(run_outcome_digest(outcome))
        assert digests[0] == digests[1]

    def test_enabled_with_unmissable_deadline_matches_disabled(self, setup):
        """The scheduled code path is inert when nothing is ever late.

        With a deadline of 1e9 seconds no lognormal draw can miss it, so
        harvest phases find nothing and every query's realized delay
        equals its plain mean delay.  Stream and platform seeds are
        shared by name; the only difference is whether ``run_cycle``
        goes through the scheduler plumbing at all.
        """
        config = dataclasses.replace(
            setup.config, scheduler_enabled=True, cycle_seconds=1e9
        )
        scheduled = build_crowdlearn(
            setup, config=config, platform_name="sched-inert"
        )
        assert scheduled.scheduler is not None
        on = scheduled.run(setup.make_stream("sched-inert"))

        plain = build_crowdlearn(setup, platform_name="sched-inert")
        off = plain.run(setup.make_stream("sched-inert"))

        totals = on.resilience_totals()
        assert totals.late_queries == 0
        assert totals.stragglers_harvested == 0
        assert scheduled.scheduler.pending_count == 0
        assert_runs_equal(on, off)
        assert run_outcome_digest(on) == run_outcome_digest(off)

    def test_drop_policy_keeps_platform_synchronous(self, setup):
        """``straggler_policy="drop"`` never wires the scheduler into the
        platform, so late responses vanish exactly as without one."""
        config = dataclasses.replace(
            setup.config,
            scheduler_enabled=True,
            cycle_seconds=150.0,
            straggler_policy="drop",
        )
        system = build_crowdlearn(setup, config=config, platform_name="sched-drop")
        assert system.scheduler is not None
        assert system.platform.scheduler is None
        outcome = system.run(setup.make_stream("sched-drop"))
        assert outcome.resilience_totals().stragglers_harvested == 0
        assert system.scheduler.pending_count == 0


class TestTightCycle:
    def test_late_responses_and_harvest(self, tight_run):
        system, outcome, telemetry = tight_run
        totals = outcome.resilience_totals()
        registry = telemetry.registry
        assert registry.value("platform_late_responses_total") > 0
        assert totals.stragglers_harvested > 0
        assert registry.value("stragglers_harvested_total") == (
            totals.stragglers_harvested
        )

    def test_lateness_concentrates_at_slow_contexts(self, tight_run):
        """Figure 5's shape survives the deadline: the low-incentive
        midnight crowd (mean ~330-750s) misses a 150s cycle."""
        _, _, telemetry = tight_run
        assert telemetry.registry.value(
            "platform_late_responses_total", context="midnight"
        ) > 0

    def test_all_late_queries_are_charged_not_refunded(self, tight_run):
        system, outcome, _ = tight_run
        totals = outcome.resilience_totals()
        assert totals.late_queries > 0
        assert totals.late_spent_cents > 0
        # the sunk cost is real money out of the ledger, not a refund
        assert system.ledger.spent >= totals.late_spent_cents
        # abandoned-query refunds are a separate, fault-only path
        assert totals.refunds == 0
        assert totals.refunded_cents == 0.0

    def test_harvested_stragglers_reach_retraining(self, tight_run):
        _, _, telemetry = tight_run
        assert telemetry.registry.value("stragglers_retrained_total") > 0

    def test_harvest_spans_emitted(self, tight_run):
        _, outcome, telemetry = tight_run
        harvest = [
            s for s in telemetry.tracer.spans if s.name == "scheduler.harvest"
        ]
        assert len(harvest) == len(outcome.cycles)

    def test_virtual_time_tracks_cycle_boundaries(self, tight_run):
        system, outcome, _ = tight_run
        # the harvest phase advanced the clock to the last cycle's start
        # (plus any retry backoff, zero on this fault-free platform)
        last_start = system.scheduler.cycle_start(len(outcome.cycles) - 1)
        assert system.scheduler.now >= last_start


class TestCheckpointWithPendingStragglers:
    def build(self, setup, telemetry=None) -> CrowdLearnSystem:
        return build_crowdlearn(
            setup,
            config=tight_config(setup),
            platform_name="sched-resume",
            telemetry=telemetry,
        )

    def test_resume_matches_uninterrupted(self, setup, tmp_path):
        """Crash with straggler responses in flight, resume -> identical.

        The checkpoint must round-trip the scheduler's event heap, the
        virtual clock and the straggler-query registry, not just the
        committee and RNGs.
        """
        uninterrupted = self.build(setup).run(setup.make_stream("sched-resume"))
        assert uninterrupted.resilience_totals().stragglers_harvested > 0

        path = tmp_path / "scheduled.ckpt"
        system = self.build(setup)
        stream = setup.make_stream("sched-resume")
        outcome = RunOutcome()
        k = 3  # crash after three completed cycles
        for t in range(k):
            outcome.append(system.run_cycle(stream.cycle(t)))
        assert system.scheduler.pending_count > 0  # responses in flight
        save_checkpoint(path, system, stream, outcome, next_cycle=k)

        resumed_system, resumed_stream, resumed_outcome, next_cycle = (
            load_checkpoint(path)
        )
        assert next_cycle == k
        assert resumed_system.scheduler.pending_count == (
            system.scheduler.pending_count
        )
        for t in range(next_cycle, setup.config.n_cycles):
            resumed_outcome.append(
                resumed_system.run_cycle(resumed_stream.cycle(t))
            )
        assert_runs_equal(resumed_outcome, uninterrupted)
        assert run_outcome_digest(resumed_outcome) == run_outcome_digest(
            uninterrupted
        )

    def test_envelope_carries_scheduler_summary(self, setup, tmp_path):
        system = self.build(setup)
        stream = setup.make_stream("sched-resume")
        outcome = RunOutcome()
        outcome.append(system.run_cycle(stream.cycle(0)))
        path = save_checkpoint(
            tmp_path / "summary.ckpt", system, stream, outcome, next_cycle=1
        )
        envelope = pickle.loads(path.read_bytes())
        summary = envelope["scheduler"]
        assert summary is not None
        assert summary["pending_events"] == system.scheduler.pending_count
        assert summary["cycle_seconds"] == 150.0


class TestConfigValidation:
    def test_cycle_seconds_must_be_positive(self):
        with pytest.raises(ValueError, match="cycle_seconds"):
            dataclasses.replace(CrowdLearnConfig(), cycle_seconds=0.0)

    def test_straggler_policy_is_closed_set(self):
        with pytest.raises(ValueError, match="straggler_policy"):
            dataclasses.replace(CrowdLearnConfig(), straggler_policy="defer")

    def test_straggler_max_cycles_must_be_positive(self):
        with pytest.raises(ValueError, match="straggler_max_cycles"):
            dataclasses.replace(CrowdLearnConfig(), straggler_max_cycles=0)
