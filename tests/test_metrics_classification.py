"""Tests for repro.metrics.classification."""

import numpy as np
import pytest

from repro.metrics.classification import (
    accuracy,
    classification_report,
    confusion_matrix,
    macro_f1,
    macro_precision,
    macro_recall,
)


class TestConfusionMatrix:
    def test_perfect_predictions_are_diagonal(self):
        y = np.array([0, 1, 2, 1, 0])
        matrix = confusion_matrix(y, y)
        assert matrix.sum() == 5
        np.testing.assert_array_equal(matrix, np.diag([2, 2, 1]))

    def test_rows_are_true_labels(self):
        matrix = confusion_matrix([0, 0], [1, 1], n_classes=2)
        assert matrix[0, 1] == 2
        assert matrix[1, 0] == 0

    def test_explicit_n_classes_pads(self):
        matrix = confusion_matrix([0], [0], n_classes=3)
        assert matrix.shape == (3, 3)

    def test_label_exceeding_n_classes_raises(self):
        with pytest.raises(ValueError):
            confusion_matrix([3], [0], n_classes=2)

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            confusion_matrix([0, 1], [0])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            confusion_matrix([], [])

    def test_negative_labels_raise(self):
        with pytest.raises(ValueError):
            confusion_matrix([-1], [0])


class TestScalarMetrics:
    def test_accuracy(self):
        assert accuracy([0, 1, 2, 0], [0, 1, 1, 0]) == pytest.approx(0.75)

    def test_macro_metrics_on_known_case(self):
        # Class 0: P=1, R=0.5; class 1: P=0.5, R=1.
        y_true = [0, 0, 1]
        y_pred = [0, 1, 1]
        assert macro_precision(y_true, y_pred) == pytest.approx(0.75)
        assert macro_recall(y_true, y_pred) == pytest.approx(0.75)
        # F1: class0 2*1*.5/1.5 = 2/3; class1 2*.5*1/1.5 = 2/3.
        assert macro_f1(y_true, y_pred) == pytest.approx(2 / 3)

    def test_perfect_scores(self):
        y = [0, 1, 2]
        assert accuracy(y, y) == 1.0
        assert macro_f1(y, y) == 1.0

    def test_absent_predicted_class_gets_zero_precision(self):
        # Class 2 is never predicted: its precision counts as 0.
        y_true = [0, 1, 2]
        y_pred = [0, 1, 0]
        assert macro_precision(y_true, y_pred) == pytest.approx((0.5 + 1.0 + 0.0) / 3)


class TestClassificationReport:
    def test_matches_individual_metrics(self, rng):
        y_true = rng.integers(0, 3, size=100)
        y_pred = rng.integers(0, 3, size=100)
        report = classification_report(y_true, y_pred)
        assert report.accuracy == pytest.approx(accuracy(y_true, y_pred))
        assert report.precision == pytest.approx(macro_precision(y_true, y_pred))
        assert report.recall == pytest.approx(macro_recall(y_true, y_pred))
        assert report.f1 == pytest.approx(macro_f1(y_true, y_pred))

    def test_as_row_order(self):
        report = classification_report([0, 1], [0, 1])
        assert report.as_row() == (1.0, 1.0, 1.0, 1.0)

    def test_str_contains_values(self):
        text = str(classification_report([0, 1], [0, 1]))
        assert "acc=1.000" in text
