"""Tests for repro.utils.logging."""

import logging

from repro.telemetry import ManualClock, Telemetry
from repro.utils.logging import LOG_LEVEL_ENV, RunLog, env_log_level, get_logger


class TestGetLogger:
    def test_namespaced(self):
        logger = get_logger("crowd")
        assert logger.name == "repro.crowd"

    def test_same_name_same_logger(self):
        assert get_logger("x") is get_logger("x")


class TestEnvLogLevel:
    def test_unset_uses_default(self, monkeypatch):
        monkeypatch.delenv(LOG_LEVEL_ENV, raising=False)
        assert env_log_level() == logging.WARNING

    def test_level_name(self, monkeypatch):
        monkeypatch.setenv(LOG_LEVEL_ENV, "debug")
        assert env_log_level() == logging.DEBUG

    def test_numeric_level(self, monkeypatch):
        monkeypatch.setenv(LOG_LEVEL_ENV, "15")
        assert env_log_level() == 15

    def test_garbage_falls_back(self, monkeypatch):
        monkeypatch.setenv(LOG_LEVEL_ENV, "LOUD")
        assert env_log_level() == logging.WARNING

    def test_configures_root_level(self, monkeypatch):
        monkeypatch.setenv(LOG_LEVEL_ENV, "INFO")
        root = logging.getLogger("repro")
        saved_handlers, root.handlers = root.handlers, []
        saved_level = root.level
        try:
            get_logger("envtest")
            assert root.level == logging.INFO
        finally:
            root.handlers = saved_handlers
            root.setLevel(saved_level)


class TestRunLogTelemetryBridge:
    def test_records_mirrored_as_events(self):
        tel = Telemetry(clock=ManualClock())
        log = RunLog(telemetry=tel)
        log.record("cycle", index=0, delay=1.5)
        assert len(log) == 1
        assert len(tel.events) == 1
        assert tel.events[0]["event"] == "cycle"
        assert tel.events[0]["index"] == 0
        assert tel.events[0]["delay"] == 1.5
        assert "time" in tel.events[0]

    def test_no_telemetry_no_events(self):
        log = RunLog()
        log.record("cycle", index=0)
        assert log.telemetry is None


class TestRunLog:
    def test_record_and_len(self):
        log = RunLog()
        log.record("cycle", index=0, delay=1.5)
        log.record("cycle", index=1, delay=2.5)
        log.record("query", index=0)
        assert len(log) == 3

    def test_by_event_filters(self):
        log = RunLog()
        log.record("a", v=1)
        log.record("b", v=2)
        assert [r["v"] for r in log.by_event("a")] == [1]

    def test_values_extracts_key(self):
        log = RunLog()
        log.record("cycle", delay=1.0)
        log.record("cycle", delay=3.0)
        log.record("cycle", other=5)  # missing key skipped
        assert log.values("cycle", "delay") == [1.0, 3.0]

    def test_group_by(self):
        log = RunLog()
        log.record("cycle", context="morning", delay=1)
        log.record("cycle", context="morning", delay=2)
        log.record("cycle", context="evening", delay=3)
        groups = log.group_by("cycle", "context")
        assert len(groups["morning"]) == 2
        assert len(groups["evening"]) == 1

    def test_extend_and_clear(self):
        a, b = RunLog(), RunLog()
        a.record("x")
        b.record("y")
        a.extend(b)
        assert len(a) == 2
        a.clear()
        assert len(a) == 0

    def test_iteration(self):
        log = RunLog()
        log.record("x", v=1)
        assert [r["event"] for r in log] == ["x"]
