"""Tests for repro.utils.logging."""

from repro.utils.logging import RunLog, get_logger


class TestGetLogger:
    def test_namespaced(self):
        logger = get_logger("crowd")
        assert logger.name == "repro.crowd"

    def test_same_name_same_logger(self):
        assert get_logger("x") is get_logger("x")


class TestRunLog:
    def test_record_and_len(self):
        log = RunLog()
        log.record("cycle", index=0, delay=1.5)
        log.record("cycle", index=1, delay=2.5)
        log.record("query", index=0)
        assert len(log) == 3

    def test_by_event_filters(self):
        log = RunLog()
        log.record("a", v=1)
        log.record("b", v=2)
        assert [r["v"] for r in log.by_event("a")] == [1]

    def test_values_extracts_key(self):
        log = RunLog()
        log.record("cycle", delay=1.0)
        log.record("cycle", delay=3.0)
        log.record("cycle", other=5)  # missing key skipped
        assert log.values("cycle", "delay") == [1.0, 3.0]

    def test_group_by(self):
        log = RunLog()
        log.record("cycle", context="morning", delay=1)
        log.record("cycle", context="morning", delay=2)
        log.record("cycle", context="evening", delay=3)
        groups = log.group_by("cycle", "context")
        assert len(groups["morning"]) == 2
        assert len(groups["evening"]) == 1

    def test_extend_and_clear(self):
        a, b = RunLog(), RunLog()
        a.record("x")
        b.record("y")
        a.extend(b)
        assert len(a) == 2
        a.clear()
        assert len(a) == 0

    def test_iteration(self):
        log = RunLog()
        log.record("x", v=1)
        assert [r["event"] for r in log] == ["x"]
