"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import SeedSequencer, default_rng, spawn


class TestDefaultRng:
    def test_seeded_generators_reproduce(self):
        a = default_rng(42).random(5)
        b = default_rng(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.array_equal(default_rng(1).random(5), default_rng(2).random(5))


class TestSpawn:
    def test_spawn_count(self, rng):
        children = spawn(rng, 4)
        assert len(children) == 4

    def test_spawn_children_independent(self, rng):
        a, b = spawn(rng, 2)
        assert not np.array_equal(a.random(10), b.random(10))

    def test_spawn_deterministic_given_parent_state(self):
        kids1 = spawn(default_rng(5), 3)
        kids2 = spawn(default_rng(5), 3)
        for k1, k2 in zip(kids1, kids2):
            np.testing.assert_array_equal(k1.random(4), k2.random(4))

    def test_spawn_zero_is_empty(self, rng):
        assert spawn(rng, 0) == []

    def test_spawn_negative_raises(self, rng):
        with pytest.raises(ValueError):
            spawn(rng, -1)


class TestSeedSequencer:
    def test_same_name_same_stream(self):
        seq = SeedSequencer(1)
        a = seq.get("crowd").random(5)
        b = SeedSequencer(1).get("crowd").random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_names_differ(self):
        seq = SeedSequencer(1)
        assert not np.array_equal(
            seq.get("crowd").random(5), seq.get("models").random(5)
        )

    def test_independent_of_request_order(self):
        seq1 = SeedSequencer(3)
        seq1.get("a")
        b_first = seq1.get("b").random(4)
        seq2 = SeedSequencer(3)
        b_only = seq2.get("b").random(4)
        np.testing.assert_array_equal(b_first, b_only)

    def test_different_root_seeds_differ(self):
        a = SeedSequencer(1).get("x").random(5)
        b = SeedSequencer(2).get("x").random(5)
        assert not np.array_equal(a, b)

    def test_issued_records_names(self):
        seq = SeedSequencer(0)
        seq.get("alpha")
        seq.get("beta")
        assert set(seq.issued()) == {"alpha", "beta"}

    def test_root_seed_property(self):
        assert SeedSequencer(99).root_seed == 99
