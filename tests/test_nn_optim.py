"""Tests for repro.nn.optim."""

import numpy as np
import pytest

from repro.nn.optim import SGD, Adam


def quadratic_problem():
    """A parameter and its gradient arrays for f(w) = 0.5 * ||w - 3||^2."""
    w = np.array([10.0, -5.0])
    g = np.zeros_like(w)
    return w, g


class TestSGD:
    def test_plain_step(self):
        w, g = quadratic_problem()
        opt = SGD([w], [g], lr=0.1)
        g[...] = w - 3.0
        opt.step()
        np.testing.assert_allclose(w, [10.0 - 0.7, -5.0 + 0.8])

    def test_converges_on_quadratic(self):
        w, g = quadratic_problem()
        opt = SGD([w], [g], lr=0.1)
        for _ in range(200):
            g[...] = w - 3.0
            opt.step()
        np.testing.assert_allclose(w, 3.0, atol=1e-6)

    def test_momentum_accelerates(self):
        w1, g1 = quadratic_problem()
        w2, g2 = quadratic_problem()
        plain = SGD([w1], [g1], lr=0.01)
        momentum = SGD([w2], [g2], lr=0.01, momentum=0.9)
        for _ in range(20):
            g1[...] = w1 - 3.0
            plain.step()
            g2[...] = w2 - 3.0
            momentum.step()
        assert np.abs(w2 - 3.0).sum() < np.abs(w1 - 3.0).sum()

    def test_weight_decay_shrinks_params(self):
        w = np.array([10.0])
        g = np.zeros_like(w)
        opt = SGD([w], [g], lr=0.1, weight_decay=0.5)
        opt.step()  # gradient 0: only decay acts
        assert w[0] < 10.0

    def test_zero_grad(self):
        w, g = quadratic_problem()
        opt = SGD([w], [g], lr=0.1)
        g[...] = 5.0
        opt.zero_grad()
        np.testing.assert_array_equal(g, 0.0)

    def test_invalid_lr_raises(self):
        w, g = quadratic_problem()
        with pytest.raises(ValueError):
            SGD([w], [g], lr=0.0)

    def test_mismatched_lists_raise(self):
        w, g = quadratic_problem()
        with pytest.raises(ValueError):
            SGD([w], [g, g], lr=0.1)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            SGD([np.zeros(2)], [np.zeros(3)], lr=0.1)


class TestAdam:
    def test_converges_on_quadratic(self):
        w, g = quadratic_problem()
        opt = Adam([w], [g], lr=0.3)
        for _ in range(300):
            g[...] = w - 3.0
            opt.step()
        np.testing.assert_allclose(w, 3.0, atol=1e-3)

    def test_first_step_magnitude_is_lr(self):
        # With bias correction, the first Adam step is ~lr in each coordinate.
        w = np.array([10.0])
        g = np.zeros_like(w)
        opt = Adam([w], [g], lr=0.1)
        g[...] = 7.0
        opt.step()
        assert w[0] == pytest.approx(10.0 - 0.1, abs=1e-6)

    def test_invalid_betas_raise(self):
        w, g = quadratic_problem()
        with pytest.raises(ValueError):
            Adam([w], [g], beta1=1.0)

    def test_handles_sparse_gradient_scales(self):
        # Coordinates with very different gradient scales still both move.
        w = np.array([10.0, 10.0])
        g = np.zeros_like(w)
        opt = Adam([w], [g], lr=0.1)
        for _ in range(50):
            g[...] = [1000.0, 0.001]
            opt.step()
        assert w[0] < 10.0 and w[1] < 10.0
        # Adam normalizes per-coordinate: both should move comparably.
        assert abs((10.0 - w[0]) - (10.0 - w[1])) < 1.0
