"""Tests for repro.boosting.gbt."""

import numpy as np
import pytest

from repro.boosting.gbt import GradientBoostedClassifier


def xor_data(rng, n=300):
    """The XOR problem: linearly inseparable, easy for depth-2 trees."""
    x = rng.uniform(-1, 1, size=(n, 2))
    y = ((x[:, 0] > 0) ^ (x[:, 1] > 0)).astype(np.int64)
    return x, y


def three_class_data(rng, n=300):
    x = rng.uniform(0, 3, size=(n, 1))
    y = np.clip(x[:, 0].astype(np.int64), 0, 2)
    return x, y


class TestGradientBoostedClassifier:
    def test_solves_xor(self, rng):
        x, y = xor_data(rng)
        model = GradientBoostedClassifier(n_estimators=40, max_depth=2)
        model.fit(x, y, rng=rng)
        assert np.mean(model.predict(x) == y) > 0.95

    def test_multiclass(self, rng):
        x, y = three_class_data(rng)
        model = GradientBoostedClassifier(n_estimators=30, max_depth=2)
        model.fit(x, y, rng=rng)
        assert np.mean(model.predict(x) == y) > 0.95

    def test_predict_proba_rows_sum_to_one(self, rng):
        x, y = three_class_data(rng)
        model = GradientBoostedClassifier(n_estimators=10).fit(x, y, rng=rng)
        probs = model.predict_proba(x)
        assert probs.shape == (len(x), 3)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)

    def test_base_score_is_prior_with_no_trees(self, rng):
        # With max_depth=0 + constant data, predictions stay near the prior.
        x = np.ones((100, 1))
        y = np.array([0] * 75 + [1] * 25)
        model = GradientBoostedClassifier(n_estimators=1, max_depth=0)
        model.fit(x, y, rng=rng)
        probs = model.predict_proba(x[:1])
        assert probs[0, 0] > probs[0, 1]

    def test_early_stopping_truncates(self, rng):
        x, y = xor_data(rng, n=200)
        # A noisy validation set guarantees the val loss bottoms out, so
        # early stopping must fire well before the round cap.
        x_val, y_val = xor_data(rng, n=100)
        flip = rng.random(100) < 0.3
        y_val = np.where(flip, 1 - y_val, y_val)
        model = GradientBoostedClassifier(
            n_estimators=200, max_depth=2, early_stopping_rounds=5
        )
        model.fit(x, y, rng=rng, x_val=x_val, y_val=y_val)
        assert model.n_rounds < 200

    def test_early_stopping_requires_validation(self, rng):
        x, y = xor_data(rng, n=50)
        model = GradientBoostedClassifier(early_stopping_rounds=3)
        with pytest.raises(ValueError):
            model.fit(x, y, rng=rng)

    def test_subsample_still_learns(self, rng):
        x, y = xor_data(rng)
        model = GradientBoostedClassifier(
            n_estimators=60, max_depth=2, subsample=0.5
        )
        model.fit(x, y, rng=rng)
        assert np.mean(model.predict(x) == y) > 0.9

    def test_more_rounds_lower_training_loss(self, rng):
        x, y = xor_data(rng)
        few = GradientBoostedClassifier(n_estimators=3, max_depth=2).fit(
            x, y, rng=np.random.default_rng(0)
        )
        many = GradientBoostedClassifier(n_estimators=40, max_depth=2).fit(
            x, y, rng=np.random.default_rng(0)
        )
        def log_loss(model):
            p = np.clip(model.predict_proba(x)[np.arange(len(y)), y], 1e-12, None)
            return -np.log(p).mean()
        assert log_loss(many) < log_loss(few)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            GradientBoostedClassifier().predict(np.zeros((2, 2)))

    def test_empty_data_raises(self, rng):
        with pytest.raises(ValueError):
            GradientBoostedClassifier().fit(
                np.zeros((0, 2)), np.zeros(0, dtype=np.int64), rng=rng
            )

    def test_invalid_hyperparams_raise(self):
        with pytest.raises(ValueError):
            GradientBoostedClassifier(n_estimators=0)
        with pytest.raises(ValueError):
            GradientBoostedClassifier(learning_rate=0.0)
        with pytest.raises(ValueError):
            GradientBoostedClassifier(subsample=0.0)

    def test_binary_labels_all_same_class_handled(self, rng):
        x = rng.normal(size=(20, 2))
        y = np.zeros(20, dtype=np.int64)
        model = GradientBoostedClassifier(n_estimators=2).fit(x, y, rng=rng)
        assert (model.predict(x) == 0).all()
