"""Tests for repro.telemetry.exporters (JSONL, Prometheus, summary)."""

import json
import re

import pytest

from repro.telemetry import (
    ManualClock,
    MetricsRegistry,
    Telemetry,
    export_jsonl,
    read_jsonl,
    summary_report,
    to_prometheus,
)


@pytest.fixture
def telemetry() -> Telemetry:
    tel = Telemetry(clock=ManualClock(tick_seconds=0.5))
    with tel.span("cycle", index=0, context="morning"):
        with tel.span("cycle.qss"):
            pass
        with tel.span("cycle.crowd", queries=2):
            pass
    tel.counter("queries_posted_total", help="queries").inc(2)
    tel.counter("cost_cents_total", help="spend").inc(12.5)
    tel.gauge("budget_remaining_cents").set(387.5)
    tel.event("cycle_done", index=0, accuracy=0.9)
    return tel


class TestJsonlRoundtrip:
    def test_roundtrip(self, telemetry, tmp_path):
        path = export_jsonl(telemetry, tmp_path / "run.jsonl")
        parsed = read_jsonl(path)
        assert [s.name for s in parsed["spans"]] == [
            s.name for s in telemetry.tracer.spans
        ]
        assert parsed["spans"][0].attributes == {}
        assert parsed["spans"][-1].attributes["context"] == "morning"
        assert parsed["events"][0]["event"] == "cycle_done"
        assert parsed["events"][0]["accuracy"] == 0.9
        restored = parsed["metrics"]
        assert restored.value("queries_posted_total") == 2.0
        assert restored.value("cost_cents_total") == 12.5
        assert restored.value("budget_remaining_cents") == 387.5

    def test_every_line_is_json(self, telemetry, tmp_path):
        path = export_jsonl(telemetry, tmp_path / "run.jsonl")
        lines = path.read_text().splitlines()
        assert all(isinstance(json.loads(line), dict) for line in lines)
        assert json.loads(lines[0])["type"] == "header"

    def test_truncation_detected(self, telemetry, tmp_path):
        path = export_jsonl(telemetry, tmp_path / "run.jsonl")
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")
        with pytest.raises(ValueError, match="truncated"):
            read_jsonl(path)

    def test_garbage_line_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json at all\n")
        with pytest.raises(ValueError, match="not valid JSON"):
            read_jsonl(path)

    def test_unknown_type_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"type": "mystery"}) + "\n")
        with pytest.raises(ValueError, match="unknown record type"):
            read_jsonl(path)


# The Prometheus text grammar, line by line: comments, then
# ``name{labels} value`` samples.
_HELP_RE = re.compile(r"^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* .*$")
_TYPE_RE = re.compile(
    r"^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)$"
)
_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"                        # metric name
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\""             # first label
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*\})?"        # more labels
    r" (NaN|[+-]Inf|[+-]?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?)$"  # value
)


class TestPrometheus:
    def test_grammar(self, telemetry):
        text = to_prometheus(telemetry.registry)
        assert text.endswith("\n")
        for line in text.rstrip("\n").splitlines():
            assert (
                _HELP_RE.match(line)
                or _TYPE_RE.match(line)
                or _SAMPLE_RE.match(line)
            ), f"line violates exposition grammar: {line!r}"

    def test_histogram_series(self, telemetry):
        text = to_prometheus(telemetry.registry)
        assert re.search(r'span_seconds_bucket\{le="\+Inf",stage="cycle"\} 1',
                         text)
        assert "span_seconds_sum" in text
        assert "span_seconds_count" in text

    def test_cumulative_le_counts_nondecreasing(self, telemetry):
        text = to_prometheus(telemetry.registry)
        counts = [
            int(m.group(1))
            for m in re.finditer(
                r'span_seconds_bucket\{[^}]*stage="cycle"[^}]*\} (\d+)', text
            )
        ]
        assert counts == sorted(counts)
        assert counts[-1] == 1

    def test_counter_and_gauge_samples(self, telemetry):
        text = to_prometheus(telemetry.registry)
        assert "# TYPE queries_posted_total counter" in text
        assert "queries_posted_total 2" in text
        assert "# TYPE budget_remaining_cents gauge" in text
        assert "budget_remaining_cents 387.5" in text

    def test_empty_registry(self):
        assert to_prometheus(MetricsRegistry()) == ""


class TestSummaryReport:
    def test_contains_stages_and_costs(self, telemetry):
        report = summary_report(telemetry)
        assert "per-stage wall time" in report
        assert "cycle.qss" in report
        assert "crowd spend (cents)" in report
        assert "queries posted" in report

    def test_share_relative_to_roots(self, telemetry):
        report = summary_report(telemetry)
        # the root "cycle" span accounts for 100% of traced time
        root_line = next(
            line for line in report.splitlines()
            if line.startswith("cycle ")
        )
        assert "100.000" in root_line

    def test_empty_telemetry(self):
        report = summary_report(Telemetry(clock=ManualClock()))
        assert "0 spans" in report

    def test_guard_section_appears_when_guards_intervene(self, telemetry):
        assert "guard interventions" not in summary_report(telemetry)
        telemetry.counter(
            "guard_rollbacks_total", help="experts rolled back"
        ).inc(2)
        telemetry.counter(
            "trainer_sentinel_aborts_total", help="epochs aborted"
        ).inc()
        report = summary_report(telemetry)
        assert "guard interventions" in report
        assert "guard_rollbacks_total" in report
        assert "trainer_sentinel_aborts_total" in report

    def test_guard_section_hidden_when_all_zero(self, telemetry):
        telemetry.counter("guard_rollbacks_total", help="rollbacks").inc(0)
        assert "guard interventions" not in summary_report(telemetry)

    def test_recovery_section_appears_after_a_resume(self, telemetry):
        assert "Recovery" not in summary_report(telemetry)
        telemetry.counter(
            "recovery_restarts", help="times a run resumed after a crash"
        ).inc()
        telemetry.counter(
            "recovery_replayed_records", help="records replayed"
        ).inc(7)
        telemetry.counter(
            "recovery_requeries_avoided_cents", help="spend served from log"
        ).inc(40.0)
        report = summary_report(telemetry)
        assert "Recovery" in report
        assert "recovery_restarts" in report
        assert "recovery_requeries_avoided_cents" in report

    def test_recovery_section_hidden_when_all_zero(self, telemetry):
        telemetry.counter("recovery_restarts", help="restarts").inc(0)
        assert "Recovery" not in summary_report(telemetry)
