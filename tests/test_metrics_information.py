"""Tests for repro.metrics.information."""

import numpy as np
import pytest

from repro.metrics.information import (
    bounded_divergence,
    entropy,
    kl_divergence,
    normalized_entropy,
    symmetric_kl,
)


class TestEntropy:
    def test_uniform_is_log_k(self):
        assert entropy([0.25] * 4) == pytest.approx(np.log(4))

    def test_point_mass_is_zero(self):
        assert entropy([1.0, 0.0, 0.0]) == pytest.approx(0.0)

    def test_base_2(self):
        assert entropy([0.5, 0.5], base=2) == pytest.approx(1.0)

    def test_renormalizes_unnormalized_input(self):
        assert entropy([2.0, 2.0]) == pytest.approx(np.log(2))

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            entropy([-0.1, 1.1])

    def test_rejects_empty_and_zero_mass(self):
        with pytest.raises(ValueError):
            entropy([])
        with pytest.raises(ValueError):
            entropy([0.0, 0.0])

    def test_normalized_entropy_bounds(self, rng):
        for _ in range(20):
            p = rng.random(5)
            assert 0.0 <= normalized_entropy(p) <= 1.0 + 1e-12

    def test_normalized_entropy_uniform_is_one(self):
        assert normalized_entropy([1 / 3] * 3) == pytest.approx(1.0)

    def test_normalized_entropy_single_class(self):
        assert normalized_entropy([1.0]) == 0.0


class TestKLDivergence:
    def test_identical_distributions_zero(self):
        p = [0.2, 0.3, 0.5]
        assert kl_divergence(p, p) == pytest.approx(0.0, abs=1e-9)

    def test_non_negative(self, rng):
        for _ in range(30):
            p = rng.dirichlet(np.ones(4))
            q = rng.dirichlet(np.ones(4))
            assert kl_divergence(p, q) >= -1e-12

    def test_asymmetric(self):
        p = [0.9, 0.1]
        q = [0.5, 0.5]
        assert kl_divergence(p, q) != pytest.approx(kl_divergence(q, p))

    def test_known_value(self):
        value = kl_divergence([0.5, 0.5], [0.25, 0.75])
        expected = 0.5 * np.log(2) + 0.5 * np.log(0.5 / 0.75)
        assert value == pytest.approx(expected, rel=1e-6)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            kl_divergence([0.5, 0.5], [1 / 3] * 3)

    def test_zero_entries_stay_finite(self):
        assert np.isfinite(kl_divergence([1.0, 0.0], [0.5, 0.5]))
        assert np.isfinite(kl_divergence([0.5, 0.5], [1.0, 0.0]))


class TestSymmetricKL:
    def test_symmetric(self, rng):
        p = rng.dirichlet(np.ones(3))
        q = rng.dirichlet(np.ones(3))
        assert symmetric_kl(p, q) == pytest.approx(symmetric_kl(q, p))

    def test_zero_iff_equal(self):
        assert symmetric_kl([0.3, 0.7], [0.3, 0.7]) == pytest.approx(0.0, abs=1e-9)


class TestBoundedDivergence:
    def test_in_unit_interval(self, rng):
        for _ in range(30):
            p = rng.dirichlet(np.ones(3))
            q = rng.dirichlet(np.ones(3))
            assert 0.0 <= bounded_divergence(p, q) < 1.0

    def test_monotone_in_divergence(self):
        close = bounded_divergence([0.5, 0.5], [0.55, 0.45])
        far = bounded_divergence([0.99, 0.01], [0.01, 0.99])
        assert far > close

    def test_identical_is_zero(self):
        assert bounded_divergence([0.4, 0.6], [0.4, 0.6]) == pytest.approx(
            0.0, abs=1e-9
        )


class TestBatchEntropy:
    """The vectorized Eq. 3 must agree with the scalar loop bit-for-bit."""

    def test_matches_scalar_rows(self, rng):
        from repro.metrics.information import batch_entropy

        probs = rng.random((40, 5))
        probs /= probs.sum(axis=1, keepdims=True)
        expected = np.array([entropy(row) for row in probs])
        np.testing.assert_array_equal(batch_entropy(probs), expected)

    def test_matches_scalar_with_base(self, rng):
        from repro.metrics.information import batch_entropy

        probs = rng.random((10, 3))
        expected = np.array([entropy(row, base=2) for row in probs])
        np.testing.assert_array_equal(batch_entropy(probs, base=2), expected)

    def test_point_mass_rows_are_zero(self):
        from repro.metrics.information import batch_entropy

        np.testing.assert_array_equal(batch_entropy(np.eye(4)), np.zeros(4))

    def test_rejects_non_2d(self):
        from repro.metrics.information import batch_entropy

        with pytest.raises(ValueError):
            batch_entropy(np.array([0.5, 0.5]))


class TestBatchNormalizedEntropy:
    def test_matches_scalar_rows(self, rng):
        from repro.metrics.information import batch_normalized_entropy

        probs = rng.random((40, 4))
        expected = np.array([normalized_entropy(row) for row in probs])
        np.testing.assert_array_equal(
            batch_normalized_entropy(probs), expected
        )

    def test_single_class_is_zero(self):
        from repro.metrics.information import batch_normalized_entropy

        np.testing.assert_array_equal(
            batch_normalized_entropy(np.ones((3, 1))), np.zeros(3)
        )

    def test_uniform_rows_are_one(self):
        from repro.metrics.information import batch_normalized_entropy

        probs = np.full((6, 5), 0.2)
        np.testing.assert_allclose(batch_normalized_entropy(probs), 1.0)
