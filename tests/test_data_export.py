"""Tests for repro.data.export (PPM image export)."""

import numpy as np
import pytest

from repro.data.export import export_dataset_sample, save_ppm, to_ppm
from repro.data.metadata import FailureArchetype


class TestToPpm:
    def test_header_and_size(self, rng):
        image = rng.random((8, 6, 3))
        data = to_ppm(image)
        assert data.startswith(b"P6\n6 8\n255\n")
        header_len = len(b"P6\n6 8\n255\n")
        assert len(data) == header_len + 8 * 6 * 3

    def test_pixel_values_scaled(self):
        image = np.zeros((1, 2, 3))
        image[0, 1] = 1.0
        data = to_ppm(image)
        pixels = data.split(b"255\n", 1)[1]
        assert pixels == bytes([0, 0, 0, 255, 255, 255])

    def test_out_of_range_clipped(self):
        image = np.full((1, 1, 3), 2.0)
        pixels = to_ppm(image).split(b"255\n", 1)[1]
        assert pixels == bytes([255, 255, 255])

    def test_bad_shape_raises(self):
        with pytest.raises(ValueError):
            to_ppm(np.zeros((4, 4)))

    def test_nan_raises(self):
        image = np.zeros((2, 2, 3))
        image[0, 0, 0] = np.nan
        with pytest.raises(ValueError):
            to_ppm(image)


class TestSavePpm:
    def test_writes_file(self, rng, tmp_path):
        path = save_ppm(rng.random((4, 4, 3)), tmp_path / "img.ppm")
        assert path.exists()
        assert path.read_bytes().startswith(b"P6\n")


class TestExportDatasetSample:
    def test_exports_per_archetype(self, small_dataset, tmp_path):
        written = export_dataset_sample(small_dataset, tmp_path, per_group=2)
        assert written
        names = [p.name for p in written]
        # At most 2 per archetype, and the honest group is represented.
        for archetype in FailureArchetype:
            matching = [n for n in names if n.startswith(archetype.value)]
            assert len(matching) <= 2
        assert any(n.startswith("none_") for n in names)

    def test_filenames_carry_labels(self, small_dataset, tmp_path):
        written = export_dataset_sample(small_dataset, tmp_path, per_group=1)
        for path in written:
            stem_parts = path.stem.split("_")
            assert stem_parts[-1].isdigit()

    def test_invalid_per_group_raises(self, small_dataset, tmp_path):
        with pytest.raises(ValueError):
            export_dataset_sample(small_dataset, tmp_path, per_group=0)

    def test_creates_directory(self, small_dataset, tmp_path):
        target = tmp_path / "nested" / "dir"
        export_dataset_sample(small_dataset, target, per_group=1)
        assert target.is_dir()
