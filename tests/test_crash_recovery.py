"""Crash/recovery round trips over real deployments.

The property at stake: killing the loop at ANY journaled stage boundary
and resuming from the journal + checkpoint must produce the same
RunOutcome digest as the uninterrupted run, with no duplicate posted
query ids and a conserved budget ledger.
"""

import dataclasses

import pytest

from repro.crowd.faults import (
    CrashPoint,
    FaultInjector,
    FaultPlan,
    InjectedCrash,
)
from repro.eval.journal import (
    CycleJournal,
    audit_recovery,
    read_journal,
    resume_run,
)
from repro.eval.persistence import run_outcome_digest
from repro.eval.runner import build_crowdlearn, fast_config, prepare
from repro.utils.rng import SeedSequencer

SEED = 7
N_CYCLES = 3


@pytest.fixture(scope="module")
def setup():
    config = dataclasses.replace(
        fast_config(), n_cycles=N_CYCLES, images_per_cycle=3
    )
    return prepare(seed=SEED, config=config, fast=True)


def build(setup, crash_spec=None, scheduler=False):
    config = setup.config
    if scheduler:
        config = dataclasses.replace(config, scheduler_enabled=True)
    system = build_crowdlearn(setup, config=config)
    if crash_spec is not None:
        plan = FaultPlan(crash_points=(CrashPoint.parse(crash_spec),))
        system.platform.faults = FaultInjector(
            plan, SeedSequencer(SEED).get("faults")
        )
    return system


@pytest.fixture(scope="module")
def reference(setup, tmp_path_factory):
    """Uninterrupted journaled run: the parity digest + every boundary."""
    tmp = tmp_path_factory.mktemp("crash-reference")
    system = build(setup)
    journal = CycleJournal.create(tmp / "ref.journal")
    try:
        outcome = system.run(setup.make_stream("crash-ref"), journal=journal)
    finally:
        journal.close()
    records = read_journal(tmp / "ref.journal").records
    return run_outcome_digest(outcome), records


def boundary_specs(records):
    """Every (stage, cycle, occurrence) a crash point could fire at."""
    counts = {}
    specs = []
    for record in records:
        if record["stage"] == "rotate":
            continue
        key = (record["stage"], record["cycle"])
        occurrence = counts.get(key, 0)
        counts[key] = occurrence + 1
        specs.append(f"{record['stage']}:{record['cycle']}:{occurrence}:raise")
    return specs


def crash_then_resume(setup, spec, tmp_path, checkpoint_every=1,
                      scheduler=False):
    """Run until the injected crash, then resume from journal+checkpoint."""
    safe = spec.replace(":", "_").replace("*", "any")
    ckpt = tmp_path / f"{safe}.ckpt"
    jrn = tmp_path / f"{safe}.journal"
    system = build(setup, crash_spec=spec, scheduler=scheduler)
    journal = CycleJournal.create(
        jrn, crash_injector=system.platform.faults
    )
    stream = setup.make_stream("crash-ref")
    with pytest.raises(InjectedCrash):
        try:
            system.run(
                stream,
                checkpoint_path=ckpt,
                checkpoint_every=checkpoint_every,
                journal=journal,
            )
        finally:
            journal.close()
    crashed_before_checkpoint = not ckpt.exists()

    def fresh():
        return (
            build(setup, scheduler=scheduler),
            setup.make_stream("crash-ref"),
        )

    result = resume_run(
        ckpt, jrn, checkpoint_every=checkpoint_every, fresh=fresh
    )
    return result, crashed_before_checkpoint


class TestEveryBoundary:
    def test_killed_at_every_boundary_resumes_to_same_digest(
        self, setup, reference, tmp_path
    ):
        ref_digest, records = reference
        specs = boundary_specs(records)
        # 3 cycles x (cycle_start, qss, 3x(post_intent+post), cqc, guard,
        # retrain, cycle_end) boundaries
        assert len(specs) >= N_CYCLES * 10
        fresh_recoveries = 0
        for spec in specs:
            result, was_fresh = crash_then_resume(setup, spec, tmp_path)
            fresh_recoveries += was_fresh
            assert run_outcome_digest(result.outcome) == ref_digest, spec
            audit = result.info["audit"]
            assert audit["ok"], (spec, audit)
            ledger = result.system.ledger
            assert abs(ledger.total - ledger.spent - ledger.remaining) < 1e-6
            assert abs(
                ledger.total_charged - ledger.total_refunded - ledger.spent
            ) < 1e-6, spec
        # cycle-0 crashes happen before the first checkpoint: the resume
        # path must also work from a rebuilt (fresh) deployment
        assert fresh_recoveries > 0

    def test_crash_at_rotation_boundary(self, setup, reference, tmp_path):
        """A crash right after checkpoint+rotate resumes with nothing to
        replay — the snapshot already covers every journaled effect."""
        ref_digest, _ = reference
        result, _ = crash_then_resume(setup, "rotate:1:0:raise", tmp_path)
        assert run_outcome_digest(result.outcome) == ref_digest
        assert result.info["replayed_records"] == 0
        assert result.info["audit"]["ok"]

    def test_sparse_checkpoints_replay_whole_cycles(
        self, setup, reference, tmp_path
    ):
        """checkpoint_every=2: the journal alone carries cycle 2's posts."""
        ref_digest, _ = reference
        result, _ = crash_then_resume(
            setup, "cqc:2:0:raise", tmp_path, checkpoint_every=2
        )
        assert run_outcome_digest(result.outcome) == ref_digest
        # cycle 2 re-ran from the cycle-2 checkpoint... the crash in cqc:2
        # means its posts were journaled and must be served, not re-posted
        assert result.info["requeries_avoided_cents"] > 0
        assert result.info["audit"]["ok"]

    def test_scheduler_run_recovers_to_parity_digest(
        self, setup, reference, tmp_path
    ):
        """The virtual-time scheduler keeps the scheduler-off parity
        guarantee across a crash: pending straggler events travel through
        the checkpoint and journaled posts restore their heap entries."""
        ref_digest, _ = reference
        result, _ = crash_then_resume(
            setup, "post:1:1:raise", tmp_path, scheduler=True
        )
        assert run_outcome_digest(result.outcome) == ref_digest
        assert result.info["audit"]["ok"]


class TestRecoveryAccounting:
    def test_replay_serves_posts_and_counts_spend(self, setup, tmp_path):
        result, _ = crash_then_resume(setup, "cqc:1:0:raise", tmp_path)
        info = result.info
        assert info["replayed_records"] > 0
        assert info["requeries_avoided_cents"] > 0
        sidecar_keys = info["audit"]["checks"]
        assert sidecar_keys["no_duplicate_query_ids"]
        assert sidecar_keys["ledger_conservation"]
        assert sidecar_keys["ledger_books_balance"]

    def test_audit_flags_double_charge(self, setup, reference, tmp_path):
        """A genuinely double-charged ledger fails the books-balance check."""
        result, _ = crash_then_resume(setup, "guard:1:0:raise", tmp_path)
        system, outcome = result.system, result.outcome
        assert audit_recovery(system, outcome)["ok"]
        system.ledger._spent -= 1.0  # simulate a lost/duplicated entry
        tampered = audit_recovery(system, outcome)
        assert not tampered["ok"]
        assert not tampered["checks"]["ledger_books_balance"]

    def test_divergent_journal_refuses_replay(self, setup, tmp_path):
        """A journal from a different world must not be replayed into this
        one: re-execution diverges and raises instead of forking history."""
        from repro.eval.journal import JournalReplayError

        ckpt = tmp_path / "div.ckpt"
        jrn = tmp_path / "div.journal"
        system = build(setup, crash_spec="cqc:1:0:raise")
        journal = CycleJournal.create(
            jrn, crash_injector=system.platform.faults
        )
        with pytest.raises(InjectedCrash):
            try:
                system.run(
                    setup.make_stream("crash-ref"),
                    checkpoint_path=ckpt,
                    journal=journal,
                )
            finally:
                journal.close()
        # corrupt the journaled history: flip a qss selection and re-seal
        # the record so the checksum passes but re-execution disagrees
        import json

        from repro.eval.journal import _record_checksum

        lines = jrn.read_text().splitlines()
        for i, line in enumerate(lines):
            record = json.loads(line)
            if record["stage"] == "qss":
                record["payload"]["indices"] = [0] * len(
                    record["payload"]["indices"]
                )
                record["sha256"] = _record_checksum(
                    record["seq"], record["cycle"], record["stage"],
                    record["payload"],
                )
                lines[i] = json.dumps(record, sort_keys=True,
                                      separators=(",", ":"))
                break
        jrn.write_text("\n".join(lines) + "\n")

        def fresh():
            return build(setup), setup.make_stream("crash-ref")

        with pytest.raises(JournalReplayError, match="diverged"):
            resume_run(ckpt, jrn, fresh=fresh)
