"""Tests for repro.crowd.tasks."""

import numpy as np
import pytest

from repro.crowd.tasks import (
    CrowdQuery,
    QueryResult,
    QuestionnaireAnswers,
    WorkerResponse,
)
from repro.data.metadata import DamageLabel, SceneType
from repro.utils.clock import TemporalContext


def make_response(worker_id=0, label=DamageLabel.SEVERE, delay=10.0, fake=False):
    return WorkerResponse(
        worker_id=worker_id,
        label=label,
        questionnaire=QuestionnaireAnswers(
            says_fake=fake, scene=SceneType.ROAD, says_people_in_danger=False
        ),
        delay_seconds=delay,
    )


class TestQuestionnaireAnswers:
    def test_encode_layout(self):
        answers = QuestionnaireAnswers(
            says_fake=True, scene=SceneType.BRIDGE, says_people_in_danger=False
        )
        encoded = answers.encode()
        assert encoded.shape == (QuestionnaireAnswers.encoded_dim(),)
        assert encoded[0] == 1.0  # fake flag
        assert encoded[-1] == 0.0  # danger flag
        scene_onehot = encoded[1:-1]
        assert scene_onehot.sum() == 1.0
        assert scene_onehot[list(SceneType).index(SceneType.BRIDGE)] == 1.0

    def test_encoded_dim(self):
        assert QuestionnaireAnswers.encoded_dim() == 7


class TestWorkerResponse:
    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            make_response(delay=-1.0)


class TestCrowdQuery:
    def test_requires_positive_incentive(self):
        with pytest.raises(ValueError):
            CrowdQuery(0, 0, incentive_cents=0.0, context=TemporalContext.MORNING)

    def test_fields(self):
        query = CrowdQuery(3, 7, 4.0, TemporalContext.EVENING)
        assert query.query_id == 3
        assert query.image_id == 7


class TestQueryResult:
    def test_mean_and_max_delay(self):
        result = QueryResult(
            query=CrowdQuery(0, 0, 1.0, TemporalContext.MORNING),
            responses=[make_response(delay=10.0), make_response(delay=30.0)],
        )
        assert result.mean_delay == pytest.approx(20.0)
        assert result.max_delay == pytest.approx(30.0)

    def test_labels_array(self):
        result = QueryResult(
            query=CrowdQuery(0, 0, 1.0, TemporalContext.MORNING),
            responses=[
                make_response(label=DamageLabel.NO_DAMAGE),
                make_response(label=DamageLabel.SEVERE),
            ],
        )
        np.testing.assert_array_equal(result.labels(), [0, 2])

    def test_worker_ids_order(self):
        result = QueryResult(
            query=CrowdQuery(0, 0, 1.0, TemporalContext.MORNING),
            responses=[make_response(worker_id=5), make_response(worker_id=2)],
        )
        assert result.worker_ids() == [5, 2]

    def test_empty_responses_raise(self):
        result = QueryResult(query=CrowdQuery(0, 0, 1.0, TemporalContext.MORNING))
        with pytest.raises(ValueError):
            _ = result.mean_delay
        with pytest.raises(ValueError):
            _ = result.max_delay
