"""Tests for repro.utils.clock."""

import pytest

from repro.utils.clock import SECONDS_PER_CYCLE, SimulatedClock, TemporalContext


class TestTemporalContext:
    @pytest.mark.parametrize(
        "hour,expected",
        [
            (6.0, TemporalContext.MORNING),
            (11.99, TemporalContext.MORNING),
            (12.0, TemporalContext.AFTERNOON),
            (17.5, TemporalContext.AFTERNOON),
            (18.0, TemporalContext.EVENING),
            (23.9, TemporalContext.EVENING),
            (0.0, TemporalContext.MIDNIGHT),
            (5.99, TemporalContext.MIDNIGHT),
            (24.0, TemporalContext.MIDNIGHT),  # wraps
            (30.0, TemporalContext.MORNING),  # wraps past 24
        ],
    )
    def test_from_hour(self, hour, expected):
        assert TemporalContext.from_hour(hour) is expected

    def test_ordered_matches_paper(self):
        assert TemporalContext.ordered() == (
            TemporalContext.MORNING,
            TemporalContext.AFTERNOON,
            TemporalContext.EVENING,
            TemporalContext.MIDNIGHT,
        )

    def test_index_is_position_in_order(self):
        for i, context in enumerate(TemporalContext.ordered()):
            assert context.index == i


class TestSimulatedClock:
    def test_initial_state(self):
        clock = SimulatedClock(start_hour=8.0)
        assert clock.elapsed_seconds == 0.0
        assert clock.hour_of_day == pytest.approx(8.0)
        assert clock.context is TemporalContext.MORNING

    def test_advance_accumulates(self):
        clock = SimulatedClock()
        clock.advance(100.0)
        clock.advance(50.0)
        assert clock.elapsed_seconds == pytest.approx(150.0)

    def test_advance_negative_raises(self):
        with pytest.raises(ValueError):
            SimulatedClock().advance(-1.0)

    def test_advance_cycles(self):
        clock = SimulatedClock()
        clock.advance_cycles(3)
        assert clock.elapsed_seconds == pytest.approx(3 * SECONDS_PER_CYCLE)

    def test_advance_cycles_negative_raises(self):
        with pytest.raises(ValueError):
            SimulatedClock().advance_cycles(-2)

    def test_hour_wraps_past_midnight(self):
        clock = SimulatedClock(start_hour=23.0)
        clock.advance(2 * 3600.0)
        assert clock.hour_of_day == pytest.approx(1.0)
        assert clock.context is TemporalContext.MIDNIGHT

    def test_jump_to_context_moves_forward_only(self):
        clock = SimulatedClock(start_hour=8.0)
        clock.jump_to_context(TemporalContext.EVENING)
        assert clock.context is TemporalContext.EVENING
        assert clock.elapsed_seconds == pytest.approx(10 * 3600.0)

    def test_jump_to_current_context_is_noop(self):
        clock = SimulatedClock(start_hour=8.0)
        before = clock.elapsed_seconds
        clock.jump_to_context(TemporalContext.MORNING)
        assert clock.elapsed_seconds == before

    def test_jump_wraps_to_next_day(self):
        clock = SimulatedClock(start_hour=20.0)
        clock.jump_to_context(TemporalContext.MORNING)
        assert clock.context is TemporalContext.MORNING
        assert clock.hour_of_day == pytest.approx(6.0)
