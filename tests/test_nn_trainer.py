"""Tests for repro.nn.trainer."""

import numpy as np
import pytest

from repro.nn.layers import Dense, ReLU
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.model import Sequential
from repro.nn.optim import Adam
from repro.nn.trainer import Trainer


def make_trainer(rng, batch_size=16):
    model = Sequential([Dense(2, 16, rng), ReLU(), Dense(16, 2, rng)])
    optimizer = Adam(model.params(), model.grads(), lr=0.01)
    return Trainer(
        model, SoftmaxCrossEntropy(), optimizer, rng=rng, batch_size=batch_size
    )


def blobs(rng, n=120):
    """Two linearly separable 2-D blobs."""
    x0 = rng.normal([-2, 0], 0.5, size=(n // 2, 2))
    x1 = rng.normal([2, 0], 0.5, size=(n // 2, 2))
    x = np.concatenate([x0, x1])
    y = np.concatenate([np.zeros(n // 2), np.ones(n // 2)]).astype(np.int64)
    return x, y


class TestTrainer:
    def test_learns_separable_blobs(self, rng):
        trainer = make_trainer(rng)
        x, y = blobs(rng)
        history = trainer.fit(x, y, epochs=30)
        assert history.train_accuracy[-1] > 0.95
        assert history.train_loss[-1] < history.train_loss[0]

    def test_evaluate_matches_training_data(self, rng):
        trainer = make_trainer(rng)
        x, y = blobs(rng)
        trainer.fit(x, y, epochs=30)
        loss, acc = trainer.evaluate(x, y)
        assert acc > 0.95
        assert loss < 0.5

    def test_history_lengths(self, rng):
        trainer = make_trainer(rng)
        x, y = blobs(rng, n=40)
        history = trainer.fit(x, y, epochs=5, x_val=x, y_val=y)
        assert history.epochs == 5
        assert len(history.val_loss) == 5

    def test_early_stopping_halts(self, rng):
        trainer = make_trainer(rng)
        x, y = blobs(rng)
        # Flipped validation labels make the val loss rise as training
        # progresses, so patience must trigger.
        history = trainer.fit(
            x, y, epochs=200, x_val=x, y_val=1 - y, patience=3
        )
        assert history.epochs < 200

    def test_early_stopping_without_val_raises(self, rng):
        trainer = make_trainer(rng)
        x, y = blobs(rng, n=20)
        with pytest.raises(ValueError):
            trainer.fit(x, y, epochs=5, patience=2)

    def test_soft_labels_accepted(self, rng):
        trainer = make_trainer(rng)
        x, y = blobs(rng, n=40)
        onehot = np.eye(2)[y]
        soft = onehot * 0.9 + 0.05
        history = trainer.fit(x, soft, epochs=3)
        assert history.epochs == 3

    def test_empty_dataset_raises(self, rng):
        trainer = make_trainer(rng)
        with pytest.raises(ValueError):
            trainer.train_epoch(np.empty((0, 2)), np.empty(0, dtype=np.int64))

    def test_invalid_epochs_raises(self, rng):
        trainer = make_trainer(rng)
        x, y = blobs(rng, n=20)
        with pytest.raises(ValueError):
            trainer.fit(x, y, epochs=0)

    def test_invalid_batch_size_raises(self, rng):
        model = Sequential([Dense(2, 2, rng)])
        optimizer = Adam(model.params(), model.grads())
        with pytest.raises(ValueError):
            Trainer(model, SoftmaxCrossEntropy(), optimizer, rng, batch_size=0)

    def test_training_is_deterministic_given_seed(self):
        rng1 = np.random.default_rng(5)
        rng2 = np.random.default_rng(5)
        t1, t2 = make_trainer(rng1), make_trainer(rng2)
        x, y = blobs(np.random.default_rng(6))
        h1 = t1.fit(x, y, epochs=3)
        h2 = t2.fit(x, y, epochs=3)
        np.testing.assert_allclose(h1.train_loss, h2.train_loss)


class TestEarlyStopRestore:
    def test_stop_restores_best_validation_weights(self, rng):
        trainer = make_trainer(rng)
        x, y = blobs(rng)
        # Flipped validation labels: val loss only gets worse as the model
        # fits the training blobs, so the best snapshot is an early epoch.
        history = trainer.fit(
            x, y, epochs=50, x_val=x, y_val=1 - y, patience=3
        )
        assert history.epochs < 50
        restored_loss, _ = trainer.evaluate(x, 1 - y)
        # The restore is an exact snapshot load, so re-evaluating must
        # reproduce the best recorded validation loss bit for bit.
        assert restored_loss == min(history.val_loss)
        assert restored_loss < history.val_loss[-1]

    def test_full_budget_keeps_final_weights(self):
        """A fit that never triggers patience must not touch the weights."""
        x, y = blobs(np.random.default_rng(6))
        with_patience = make_trainer(np.random.default_rng(5))
        without = make_trainer(np.random.default_rng(5))
        with_patience.fit(x, y, epochs=5, x_val=x, y_val=y, patience=50)
        without.fit(x, y, epochs=5, x_val=x, y_val=y)
        for a, b in zip(with_patience.model.params(), without.model.params()):
            np.testing.assert_array_equal(a, b)
