"""Tests for repro.vision.kmeans."""

import numpy as np
import pytest

from repro.vision.kmeans import KMeans, kmeans_plus_plus_init


def three_blobs(rng, n_per=50, spread=0.1):
    centers = np.array([[0.0, 0.0], [5.0, 5.0], [-5.0, 5.0]])
    points = np.concatenate(
        [rng.normal(c, spread, size=(n_per, 2)) for c in centers]
    )
    return points, centers


class TestKMeansPlusPlusInit:
    def test_returns_k_centers(self, rng):
        data, _ = three_blobs(rng)
        centers = kmeans_plus_plus_init(data, 3, rng)
        assert centers.shape == (3, 2)

    def test_centers_are_data_points(self, rng):
        data, _ = three_blobs(rng)
        centers = kmeans_plus_plus_init(data, 3, rng)
        for c in centers:
            assert np.min(np.sum((data - c) ** 2, axis=1)) == pytest.approx(0.0)

    def test_duplicate_points_handled(self, rng):
        data = np.zeros((10, 2))
        centers = kmeans_plus_plus_init(data, 3, rng)
        assert centers.shape == (3, 2)

    def test_invalid_k_raises(self, rng):
        data, _ = three_blobs(rng)
        with pytest.raises(ValueError):
            kmeans_plus_plus_init(data, 0, rng)
        with pytest.raises(ValueError):
            kmeans_plus_plus_init(data, len(data) + 1, rng)


class TestKMeans:
    def test_recovers_well_separated_blobs(self, rng):
        data, true_centers = three_blobs(rng)
        model = KMeans(n_clusters=3).fit(data, rng)
        # Every true center has a fitted center nearby.
        for c in true_centers:
            distances = np.sqrt(np.sum((model.centers - c) ** 2, axis=1))
            assert distances.min() < 0.5

    def test_predict_assigns_to_nearest(self, rng):
        data, _ = three_blobs(rng)
        model = KMeans(n_clusters=3).fit(data, rng)
        labels = model.predict(data)
        assert labels.shape == (len(data),)
        # Points in the same blob share labels.
        assert len(set(labels[:50])) == 1

    def test_inertia_decreases_with_more_clusters(self, rng):
        data, _ = three_blobs(rng, spread=1.0)
        inertia_2 = KMeans(n_clusters=2).fit(data, rng).inertia
        inertia_6 = KMeans(n_clusters=6).fit(data, rng).inertia
        assert inertia_6 < inertia_2

    def test_k_equals_n(self, rng):
        data = rng.normal(size=(5, 2))
        model = KMeans(n_clusters=5).fit(data, rng)
        assert model.inertia == pytest.approx(0.0, abs=1e-9)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            KMeans(n_clusters=2).predict(np.zeros((3, 2)))

    def test_too_few_samples_raise(self, rng):
        with pytest.raises(ValueError):
            KMeans(n_clusters=5).fit(np.zeros((3, 2)), rng)

    def test_invalid_params_raise(self):
        with pytest.raises(ValueError):
            KMeans(n_clusters=0)
        with pytest.raises(ValueError):
            KMeans(n_clusters=2, max_iter=0)

    def test_1d_data_rejected(self, rng):
        with pytest.raises(ValueError):
            KMeans(n_clusters=2).fit(np.zeros(10), rng)

    def test_deterministic_given_rng(self):
        data, _ = three_blobs(np.random.default_rng(0))
        a = KMeans(n_clusters=3).fit(data, np.random.default_rng(42))
        b = KMeans(n_clusters=3).fit(data, np.random.default_rng(42))
        np.testing.assert_allclose(a.centers, b.centers)
