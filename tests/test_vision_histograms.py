"""Tests for repro.vision.histograms."""

import numpy as np
import pytest

from repro.vision.histograms import (
    color_histogram,
    grayscale_histogram,
    joint_color_histogram,
)


class TestGrayscaleHistogram:
    def test_sums_to_one(self, rng):
        hist = grayscale_histogram(rng.random((16, 16)), n_bins=8)
        assert hist.sum() == pytest.approx(1.0)

    def test_constant_image_single_bin(self):
        hist = grayscale_histogram(np.full((8, 8), 0.05), n_bins=10)
        assert hist[0] == pytest.approx(1.0)

    def test_out_of_range_values_uniform_fallback(self):
        # All mass outside the range: histogram falls back to uniform.
        hist = grayscale_histogram(np.full((4, 4), 5.0), n_bins=4)
        np.testing.assert_allclose(hist, 0.25)

    def test_invalid_bins_raise(self):
        with pytest.raises(ValueError):
            grayscale_histogram(np.zeros((4, 4)), n_bins=0)


class TestColorHistogram:
    def test_length_three_channels(self, rng):
        hist = color_histogram(rng.random((8, 8, 3)), n_bins=8)
        assert hist.shape == (24,)

    def test_each_channel_normalized(self, rng):
        hist = color_histogram(rng.random((8, 8, 3)), n_bins=8)
        for c in range(3):
            assert hist[c * 8 : (c + 1) * 8].sum() == pytest.approx(1.0)

    def test_grayscale_passthrough(self, rng):
        hist = color_histogram(rng.random((8, 8)), n_bins=8)
        assert hist.shape == (8,)

    def test_distinguishes_red_from_blue(self):
        red = np.zeros((4, 4, 3))
        red[:, :, 0] = 1.0
        blue = np.zeros((4, 4, 3))
        blue[:, :, 2] = 1.0
        assert not np.allclose(color_histogram(red), color_histogram(blue))


class TestJointColorHistogram:
    def test_length(self, rng):
        hist = joint_color_histogram(rng.random((8, 8, 3)), bins_per_channel=4)
        assert hist.shape == (64,)
        assert hist.sum() == pytest.approx(1.0)

    def test_constant_color_single_cell(self):
        image = np.full((4, 4, 3), 0.1)
        hist = joint_color_histogram(image, bins_per_channel=2)
        assert hist.max() == pytest.approx(1.0)
        assert (hist > 0).sum() == 1

    def test_requires_rgb(self):
        with pytest.raises(ValueError):
            joint_color_histogram(np.zeros((4, 4)))

    def test_invalid_bins_raise(self):
        with pytest.raises(ValueError):
            joint_color_histogram(np.zeros((4, 4, 3)), bins_per_channel=0)
