"""Tests for repro.bandit.epsilon."""

import numpy as np
import pytest

from repro.bandit.epsilon import EpsilonGreedyBandit

ARMS = (1.0, 2.0, 4.0)


def converged_bandit(rng, epsilon=0.0, contextual=True):
    bandit = EpsilonGreedyBandit(2, ARMS, rng, epsilon=epsilon, contextual=contextual)
    # Context 0: arm 2 best; context 1: arm 0 best.
    for _ in range(10):
        bandit.update(0, 0, -2.0)
        bandit.update(0, 1, -1.5)
        bandit.update(0, 2, -0.5)
        bandit.update(1, 0, -0.2)
        bandit.update(1, 1, -1.0)
        bandit.update(1, 2, -1.5)
    return bandit


class TestEpsilonGreedy:
    def test_greedy_picks_best_per_context(self, rng):
        bandit = converged_bandit(rng)
        assert bandit.select(0) == 2
        assert bandit.select(1) == 0

    def test_unpulled_arms_tried_first(self, rng):
        bandit = EpsilonGreedyBandit(1, ARMS, rng, epsilon=0.0)
        bandit.update(0, 0, -1.0)
        assert bandit.select(0) in (1, 2)

    def test_exploration_rate(self):
        rng = np.random.default_rng(0)
        bandit = converged_bandit(rng, epsilon=0.5)
        picks = [bandit.select(0) for _ in range(400)]
        explored = sum(1 for p in picks if p != 2)
        # ~epsilon * (2/3 chance of a non-best arm under uniform exploration)
        assert 0.2 < explored / 400 < 0.5

    def test_budget_restricts_affordable(self, rng):
        bandit = converged_bandit(rng)
        # Only arm 0 (cost 1) affordable.
        assert bandit.select(0, budget_per_round=1.0) == 0

    def test_budget_below_cheapest_falls_back(self, rng):
        bandit = converged_bandit(rng)
        assert bandit.select(0, budget_per_round=0.1) == 0

    def test_non_contextual_pools_statistics(self, rng):
        bandit = EpsilonGreedyBandit(2, ARMS, rng, epsilon=0.0, contextual=False)
        # Updates from different contexts all land in the pooled slot.
        bandit.update(0, 0, -2.0)
        bandit.update(1, 1, -0.1)
        bandit.update(0, 2, -1.0)
        assert bandit.pull_counts(0)[0] == 1
        assert bandit.pull_counts(0)[1] == 1
        # With every arm pulled once, both contexts agree on the pooled best.
        assert bandit.select(0) == 1
        assert bandit.select(1) == 1

    def test_invalid_epsilon_raises(self, rng):
        with pytest.raises(ValueError):
            EpsilonGreedyBandit(1, ARMS, rng, epsilon=1.5)

    def test_epsilon_one_always_explores(self):
        rng = np.random.default_rng(1)
        bandit = converged_bandit(rng, epsilon=1.0)
        picks = {bandit.select(0) for _ in range(100)}
        assert picks == {0, 1, 2}
