"""Tests for the supervising watchdog (synthetic children keep these fast;

one end-to-end SIGKILL recovery through the real CLI rides in
TestSuperviseEndToEnd).
"""

import json
import sys
import textwrap

import pytest

from repro.eval.journal import load_recovery_info
from repro.eval.supervisor import (
    SupervisorConfig,
    SupervisorOutcome,
    render_recovery_table,
    supervise,
)

#: A scriptable child: reads a JSON "plan" file listing one behaviour per
#: launch ("ok", "crash", or "hang"), pops the head, and acts it out.
CHILD = textwrap.dedent("""
    import json, os, sys, time
    plan_path = sys.argv[1]
    plan = json.loads(open(plan_path).read())
    action = plan.pop(0) if plan else "ok"
    open(plan_path, "w").write(json.dumps(plan))
    hb = os.environ.get("REPRO_HEARTBEAT")
    resumed = "--resume" in sys.argv
    open(plan_path + ".log", "a").write(action + ("+resume" if resumed else "") + "\\n")
    if action == "crash":
        if hb: open(hb, "w").write("")
        sys.exit(75)
    if action == "hang":
        time.sleep(3600)  # never beats: the watchdog must kill us
    if hb: open(hb, "w").write("")
    sys.exit(0)
""")


@pytest.fixture()
def child(tmp_path):
    script = tmp_path / "child.py"
    script.write_text(CHILD)

    def launch_plan(*actions):
        plan = tmp_path / "plan.json"
        plan.write_text(json.dumps(list(actions)))
        return [sys.executable, str(script), str(plan)], plan

    return launch_plan


def fast_config(**overrides):
    defaults = dict(
        watchdog_seconds=1.0,
        max_restarts=3,
        backoff_base_seconds=0.05,
        poll_seconds=0.05,
    )
    defaults.update(overrides)
    return SupervisorConfig(**defaults)


class TestSupervise:
    def test_clean_child_no_restarts(self, child, tmp_path):
        argv, _ = child("ok")
        outcome = supervise(argv, tmp_path / "hb", config=fast_config())
        assert outcome.ok
        assert outcome.restarts == 0
        assert outcome.child_exits == [0]

    def test_crash_restarts_with_resume(self, child, tmp_path):
        argv, plan = child("crash", "ok")
        outcome = supervise(argv, tmp_path / "hb", config=fast_config())
        assert outcome.ok
        assert outcome.restarts == 1
        assert outcome.crashes_detected == 1
        assert outcome.child_exits == [75, 0]
        log = (str(plan) + ".log")
        launches = open(log).read().splitlines()
        assert launches == ["crash", "ok+resume"]

    def test_hang_detected_and_killed(self, child, tmp_path):
        argv, _ = child("hang", "ok")
        outcome = supervise(argv, tmp_path / "hb", config=fast_config())
        assert outcome.ok
        assert outcome.hangs_detected == 1
        assert outcome.restarts == 1

    def test_restart_budget_exhausted(self, child, tmp_path):
        argv, _ = child("crash", "crash", "crash", "crash", "crash")
        outcome = supervise(
            argv, tmp_path / "hb", config=fast_config(max_restarts=2)
        )
        assert not outcome.ok
        assert outcome.gave_up
        assert outcome.returncode == 75
        assert outcome.restarts == 2  # budget, not the failed final exit
        assert len(outcome.child_exits) == 3  # initial + 2 restarts

    def test_sidecar_records_supervisor_counters(self, child, tmp_path):
        argv, _ = child("crash", "ok")
        journal = tmp_path / "j.journal"
        supervise(
            argv, tmp_path / "hb", config=fast_config(), journal_path=journal
        )
        info = load_recovery_info(journal)
        assert info["supervisor_crashes"] == 1
        assert info["supervisor_gave_up"] is False

    def test_crash_env_only_on_first_launch(self, child, tmp_path):
        probe = tmp_path / "crash-env.log"
        script = tmp_path / "env_child.py"
        script.write_text(textwrap.dedent(f"""
            import os, sys
            with open({str(probe)!r}, "a") as fh:
                fh.write(os.environ.get("REPRO_CRASH_AT", "-") + "\\n")
            sys.exit(0 if "--resume" in sys.argv else 75)
        """))
        outcome = supervise(
            [sys.executable, str(script)],
            tmp_path / "hb",
            config=fast_config(),
            first_launch_env={"REPRO_CRASH_AT": "cqc:1:0:kill"},
        )
        assert outcome.ok
        assert probe.read_text().splitlines() == ["cqc:1:0:kill", "-"]


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"watchdog_seconds": 0},
            {"max_restarts": -1},
            {"backoff_base_seconds": -0.1},
            {"poll_seconds": 0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            SupervisorConfig(**kwargs)

    def test_backoff_doubles_and_caps(self):
        config = SupervisorConfig(
            backoff_base_seconds=1.0, backoff_max_seconds=5.0
        )
        assert config.backoff(1) == 1.0
        assert config.backoff(2) == 2.0
        assert config.backoff(3) == 4.0
        assert config.backoff(4) == 5.0  # capped


class TestRecoveryTable:
    def test_renders_counters_and_audit(self, tmp_path):
        from repro.eval.journal import update_recovery_info

        journal = tmp_path / "j.journal"
        update_recovery_info(
            journal,
            recovery_restarts=2,
            recovery_replayed_records=9,
            recovery_requeries_avoided_cents=40.0,
            audit={"ok": True, "checks": {"ledger_conservation": True}},
        )
        outcome = SupervisorOutcome(
            returncode=0, restarts=2, crashes_detected=2, child_exits=[75, 75, 0]
        )
        table = render_recovery_table(journal, outcome)
        assert "Recovery" in table
        assert "restarts" in table
        assert "9" in table
        assert "0.40 USD" in table
        assert "passed" in table

    def test_flags_failed_audit(self, tmp_path):
        from repro.eval.journal import update_recovery_info

        journal = tmp_path / "j.journal"
        update_recovery_info(
            journal,
            audit={"ok": False, "checks": {"ledger_books_balance": False}},
        )
        table = render_recovery_table(
            journal, SupervisorOutcome(returncode=0)
        )
        assert "FAILED" in table
        assert "ledger_books_balance" in table


class TestSuperviseEndToEnd:
    def test_sigkill_mid_post_recovers_to_reference_digest(self, tmp_path):
        """One real deployment: SIGKILL at a post boundary, supervised
        restart, byte-identical digest vs an uninterrupted run."""
        import subprocess

        def run_cli(*extra):
            base = [
                sys.executable, "-m", "repro",
            ]
            return subprocess.run(
                list(base) + list(extra), capture_output=True, text=True,
                cwd=str(tmp_path),
                env={**__import__("os").environ,
                     "PYTHONPATH": str(
                         __import__("pathlib").Path(__file__)
                         .resolve().parent.parent / "src"
                     )},
            )

        ref = run_cli(
            "run", "--seed", "11", "--cycles", "2",
            "--checkpoint", "ref.ckpt", "--journal", "ref.journal",
            "--digest-file", "ref.digest",
        )
        assert ref.returncode == 0, ref.stderr
        sup = run_cli(
            "supervise", "--seed", "11", "--cycles", "2",
            "--checkpoint", "sup.ckpt", "--journal", "sup.journal",
            "--digest-file", "sup.digest",
            "--crash-at", "post:1:0:kill",
            "--backoff", "0.1", "--max-restarts", "2",
        )
        assert sup.returncode == 0, sup.stderr + sup.stdout
        assert "Recovery" in sup.stdout
        ref_digest = (tmp_path / "ref.digest").read_text()
        sup_digest = (tmp_path / "sup.digest").read_text()
        assert ref_digest == sup_digest
        info = load_recovery_info(tmp_path / "sup.journal")
        assert info["recovery_restarts"] == 1
        assert info["recovery_requeries_avoided_cents"] > 0
        assert info["audit"]["ok"]
