"""System-level telemetry guarantees.

The contracts every perf PR will lean on: enabling telemetry never changes
what the closed loop computes (outcomes are byte-identical with no-op,
explicit-null, and live telemetry), the instrument values agree with the
outcomes, and telemetry history survives checkpoint/resume.
"""

import pickle

import numpy as np
import pytest

from repro.core.system import CrowdLearnSystem, RunOutcome
from repro.eval.persistence import load_checkpoint, save_checkpoint
from repro.eval.runner import build_crowdlearn, prepare
from repro.telemetry import NULL_TELEMETRY, Telemetry

STREAM = "tel-int"


@pytest.fixture(scope="module")
def setup():
    return prepare(seed=11, fast=True)


def run_once(setup, telemetry):
    system = build_crowdlearn(
        setup, platform_name=STREAM, telemetry=telemetry
    )
    return system, system.run(setup.make_stream(STREAM))


def assert_outcomes_equal(a: RunOutcome, b: RunOutcome) -> None:
    assert len(a.cycles) == len(b.cycles)
    for ca, cb in zip(a.cycles, b.cycles):
        np.testing.assert_array_equal(ca.final_labels, cb.final_labels)
        np.testing.assert_array_equal(ca.final_scores, cb.final_scores)
        np.testing.assert_array_equal(ca.query_indices, cb.query_indices)
        np.testing.assert_array_equal(ca.incentives_cents, cb.incentives_cents)
        assert ca.crowd_delay == cb.crowd_delay
        assert ca.cost_cents == cb.cost_cents
        assert ca.resilience == cb.resilience


@pytest.fixture(scope="module")
def baseline(setup):
    """The uninstrumented run (process default: no-op singleton)."""
    _, outcome = run_once(setup, telemetry=None)
    return outcome


class TestNoOpIsIdentical:
    def test_explicit_null_outcome_unchanged(self, setup, baseline):
        _, outcome = run_once(setup, telemetry=NULL_TELEMETRY)
        assert_outcomes_equal(outcome, baseline)

    def test_enabled_outcome_unchanged(self, setup, baseline):
        _, outcome = run_once(setup, telemetry=Telemetry())
        assert_outcomes_equal(outcome, baseline)

    def test_null_records_nothing(self, setup, baseline):
        assert NULL_TELEMETRY.tracer.spans == []
        assert len(NULL_TELEMETRY.registry) == 0


class TestInstrumentedRun:
    @pytest.fixture(scope="class")
    def traced(self, setup):
        telemetry = Telemetry()
        system, outcome = run_once(setup, telemetry=telemetry)
        return telemetry, system, outcome

    def test_every_stage_traced(self, traced):
        telemetry, _, outcome = traced
        names = {s.name for s in telemetry.tracer.spans}
        for stage in ("cycle", "cycle.committee", "cycle.qss", "cycle.crowd",
                      "cycle.ipd.price", "platform.post_query", "cycle.cqc",
                      "cycle.mic.reweight", "cycle.mic.retrain",
                      "cycle.ipd.observe"):
            assert stage in names, f"missing span {stage}"
        assert len(telemetry.tracer.by_name("cycle")) == len(outcome.cycles)

    def test_spans_nest_under_cycle(self, traced):
        telemetry, _, _ = traced
        ids = {s.span_id: s for s in telemetry.tracer.spans}
        for span in telemetry.tracer.by_name("cycle.qss"):
            assert ids[span.parent_id].name == "cycle"

    def test_counters_match_outcome(self, traced):
        telemetry, system, outcome = traced
        reg = telemetry.registry
        n_posted = sum(len(c.query_indices) for c in outcome.cycles)
        assert reg.value("queries_posted_total") == n_posted
        assert reg.value("cost_cents_total") == pytest.approx(
            outcome.total_cost_cents()
        )
        assert reg.value("cycles_total") == len(outcome.cycles)
        assert reg.value("budget_remaining_cents") == pytest.approx(
            system.ledger.remaining
        )
        # the platform saw at least the queries the system kept
        assert reg.value("platform_queries_total") >= n_posted

    def test_incentive_histogram_totals(self, traced):
        telemetry, _, outcome = traced
        hist = telemetry.registry.get("incentive_cents")
        paid = np.concatenate(
            [c.incentives_cents for c in outcome.cycles]
        )
        assert hist.count == len(paid)
        assert hist.sum == pytest.approx(float(paid.sum()))

    def test_resilience_catalog_registered(self, traced):
        telemetry, _, _ = traced
        # fault-free run: the bridge still registers the catalog, all zero
        assert telemetry.registry.value("resilience_retries_total") == 0.0
        assert telemetry.registry.get("resilience_fallbacks_total") is not None


class TestCheckpointTelemetry:
    def test_resume_preserves_history(self, setup, baseline, tmp_path):
        path = tmp_path / "tel.ckpt"
        telemetry = Telemetry()
        system = build_crowdlearn(
            setup, platform_name=STREAM, telemetry=telemetry
        )
        stream = setup.make_stream(STREAM)
        outcome = RunOutcome()
        k = 2  # simulated crash after two completed cycles
        for t in range(k):
            outcome.append(system.run_cycle(stream.cycle(t)))
        cycles_before = telemetry.registry.value("cycles_total")
        assert cycles_before == k
        save_checkpoint(path, system, stream, outcome, k)

        restored_system, _, _, _ = load_checkpoint(path)
        restored_tel = restored_system.telemetry
        assert restored_tel is not None and restored_tel.enabled
        assert restored_tel.registry.value("cycles_total") == k
        assert len(restored_tel.tracer.by_name("cycle")) == k

        resumed = CrowdLearnSystem.resume_from_checkpoint(path)
        assert_outcomes_equal(resumed, baseline)
        # the resumed system's telemetry kept counting past the crash
        final_system, _, _, _ = load_checkpoint(path)
        assert final_system.telemetry.registry.value("cycles_total") == len(
            baseline.cycles
        )

    def test_snapshot_stored_in_payload(self, setup, tmp_path):
        path = tmp_path / "snap.ckpt"
        telemetry = Telemetry()
        system = build_crowdlearn(
            setup, platform_name=STREAM, telemetry=telemetry
        )
        stream = setup.make_stream(STREAM)
        outcome = RunOutcome()
        outcome.append(system.run_cycle(stream.cycle(0)))
        save_checkpoint(path, system, stream, outcome, 1)
        payload = pickle.loads(path.read_bytes())
        snap = payload["telemetry"]
        assert snap["n_spans"] > 0
        assert snap["stages"]["cycle"]["count"] == 1

    def test_uninstrumented_checkpoint_has_no_snapshot(self, setup, tmp_path):
        path = tmp_path / "plain.ckpt"
        system = build_crowdlearn(setup, platform_name=STREAM)
        stream = setup.make_stream(STREAM)
        save_checkpoint(path, system, stream, RunOutcome(), 0)
        payload = pickle.loads(path.read_bytes())
        assert payload["telemetry"] is None
