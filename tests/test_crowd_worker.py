"""Tests for repro.crowd.worker."""

import pytest

from repro.crowd.quality import QualityModel
from repro.crowd.worker import Worker
from repro.data.metadata import (
    DamageLabel,
    FailureArchetype,
    ImageMetadata,
    SceneType,
)
from repro.utils.clock import TemporalContext


def make_worker(reliability=0.9, insight=0.9, speed=1.0):
    activity = {context: 1.0 for context in TemporalContext}
    return Worker(
        worker_id=0,
        reliability=reliability,
        insight=insight,
        speed=speed,
        activity=activity,
    )


def honest_meta(label=DamageLabel.SEVERE):
    return ImageMetadata(
        image_id=0,
        true_label=label,
        archetype=FailureArchetype.NONE,
        scene=SceneType.BUILDING,
        is_fake=False,
        people_in_danger=False,
        apparent_label=label,
    )


def fake_meta():
    return ImageMetadata(
        image_id=1,
        true_label=DamageLabel.NO_DAMAGE,
        archetype=FailureArchetype.FAKE,
        scene=SceneType.ROAD,
        is_fake=True,
        people_in_danger=False,
        apparent_label=DamageLabel.SEVERE,
    )


def lowres_meta():
    return ImageMetadata(
        image_id=2,
        true_label=DamageLabel.SEVERE,
        archetype=FailureArchetype.LOW_RESOLUTION,
        scene=SceneType.ROAD,
        is_fake=False,
        people_in_danger=True,
        apparent_label=DamageLabel.SEVERE,
    )


QUALITY = QualityModel()


class TestWorkerValidation:
    def test_rejects_bad_reliability(self):
        with pytest.raises(ValueError):
            Worker(0, 1.5, 0.5, 1.0, {c: 1.0 for c in TemporalContext})

    def test_rejects_bad_speed(self):
        with pytest.raises(ValueError):
            Worker(0, 0.8, 0.5, 0.0, {c: 1.0 for c in TemporalContext})

    def test_rejects_negative_activity(self):
        activity = {c: 1.0 for c in TemporalContext}
        activity[TemporalContext.MORNING] = -1.0
        with pytest.raises(ValueError):
            Worker(0, 0.8, 0.5, 1.0, activity)


class TestLabelAccuracy:
    def test_reflects_reliability_and_incentive(self):
        worker = make_worker(reliability=0.85)
        assert worker.label_accuracy(8.0, QUALITY) == pytest.approx(0.85)
        assert worker.label_accuracy(1.0, QUALITY) == pytest.approx(0.70)

    def test_low_resolution_penalty(self):
        worker = make_worker(reliability=0.85)
        plain = worker.label_accuracy(8.0, QUALITY, honest_meta())
        degraded = worker.label_accuracy(8.0, QUALITY, lowres_meta())
        assert plain - degraded == pytest.approx(0.12, abs=1e-9)

    def test_moderate_class_penalty(self):
        worker = make_worker(reliability=0.85)
        severe = worker.label_accuracy(8.0, QUALITY, honest_meta())
        moderate = worker.label_accuracy(
            8.0, QUALITY, honest_meta(DamageLabel.MODERATE)
        )
        assert severe - moderate == pytest.approx(0.06, abs=1e-9)


class TestAnswerLabel:
    def test_reliable_worker_mostly_correct_on_honest(self, rng):
        worker = make_worker(reliability=0.9)
        meta = honest_meta()
        answers = [
            worker.answer_label(meta, 8.0, QUALITY, rng) for _ in range(1000)
        ]
        correct = sum(1 for a in answers if a == meta.true_label)
        assert correct / 1000 == pytest.approx(0.9, abs=0.04)

    def test_insightful_worker_sees_through_fakes(self, rng):
        worker = make_worker(reliability=0.95, insight=0.95)
        meta = fake_meta()
        answers = [
            worker.answer_label(meta, 8.0, QUALITY, rng) for _ in range(1000)
        ]
        correct = sum(1 for a in answers if a == DamageLabel.NO_DAMAGE)
        assert correct / 1000 > 0.8

    def test_unintuitive_worker_fooled_by_fakes(self, rng):
        worker = make_worker(reliability=0.9, insight=0.05)
        meta = fake_meta()
        answers = [
            worker.answer_label(meta, 8.0, QUALITY, rng) for _ in range(500)
        ]
        fooled = sum(1 for a in answers if a == DamageLabel.SEVERE)
        assert fooled / 500 > 0.85

    def test_errors_prefer_adjacent_severity(self, rng):
        worker = make_worker(reliability=0.3)
        meta = honest_meta(DamageLabel.NO_DAMAGE)
        answers = [
            worker.answer_label(meta, 8.0, QUALITY, rng) for _ in range(2000)
        ]
        moderate = sum(1 for a in answers if a == DamageLabel.MODERATE)
        severe = sum(1 for a in answers if a == DamageLabel.SEVERE)
        assert moderate > severe


class TestQuestionnaire:
    def test_insightful_worker_flags_fakes(self, rng):
        worker = make_worker(insight=0.95)
        meta = fake_meta()
        flags = [
            worker.answer_questionnaire(meta, 8.0, QUALITY, rng).says_fake
            for _ in range(500)
        ]
        assert sum(flags) / 500 > 0.85

    def test_honest_image_rarely_flagged(self, rng):
        worker = make_worker(insight=0.95)
        meta = honest_meta()
        flags = [
            worker.answer_questionnaire(meta, 8.0, QUALITY, rng).says_fake
            for _ in range(500)
        ]
        assert sum(flags) / 500 < 0.15

    def test_scene_mostly_correct(self, rng):
        worker = make_worker(reliability=0.9)
        meta = honest_meta()
        scenes = [
            worker.answer_questionnaire(meta, 8.0, QUALITY, rng).scene
            for _ in range(500)
        ]
        correct = sum(1 for s in scenes if s == meta.scene)
        assert correct / 500 > 0.8

    def test_danger_recognized(self, rng):
        worker = make_worker(insight=0.9)
        meta = lowres_meta()  # people_in_danger=True
        answers = [
            worker.answer_questionnaire(meta, 8.0, QUALITY, rng)
            for _ in range(500)
        ]
        said = sum(1 for a in answers if a.says_people_in_danger)
        assert said / 500 > 0.8
