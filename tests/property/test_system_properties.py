"""Property-based tests for core data structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bandit.budget import BudgetExhausted, BudgetLedger
from repro.bandit.ccmb import UCBALPBandit
from repro.core.qss import QuerySetSelector
from repro.boosting.tree import RegressionTree


class TestBudgetLedgerProperties:
    @given(
        st.floats(1.0, 1000.0),
        st.lists(st.floats(0.0, 50.0), max_size=40),
    )
    def test_conservation(self, total, charges):
        """spent + remaining == total under any charge sequence."""
        ledger = BudgetLedger(total)
        for amount in charges:
            try:
                ledger.charge(amount)
            except BudgetExhausted:
                pass
        assert ledger.spent + ledger.remaining == np.isclose(
            ledger.spent + ledger.remaining, total
        ) * total or abs(ledger.spent + ledger.remaining - total) < 1e-6
        assert ledger.spent <= total + 1e-6
        assert ledger.remaining >= -1e-6


class TestQssProperties:
    @settings(max_examples=50)
    @given(
        st.integers(0, 10_000),
        st.integers(1, 40),
        st.floats(0.0, 1.0),
    )
    def test_selection_is_valid_subset(self, seed, n, epsilon):
        rng = np.random.default_rng(seed)
        entropy = rng.random(n)
        query_size = int(rng.integers(0, n + 1))
        selector = QuerySetSelector(epsilon=epsilon)
        chosen = selector.select(entropy, query_size, rng)
        assert chosen.shape == (query_size,)
        assert len(set(chosen.tolist())) == query_size
        assert all(0 <= i < n for i in chosen)

    @settings(max_examples=30)
    @given(st.integers(0, 10_000), st.integers(2, 30))
    def test_greedy_selects_max_first(self, seed, n):
        rng = np.random.default_rng(seed)
        entropy = rng.random(n)
        selector = QuerySetSelector(epsilon=0.0)
        chosen = selector.select(entropy, 1, rng)
        assert entropy[chosen[0]] == entropy.max()


class TestBanditProperties:
    @settings(max_examples=25)
    @given(st.integers(0, 10_000), st.floats(0.5, 30.0))
    def test_allocation_rows_are_distributions(self, seed, rho):
        rng = np.random.default_rng(seed)
        bandit = UCBALPBandit(3, (1.0, 2.0, 4.0, 8.0), exploration=0.5)
        for _ in range(30):
            z = int(rng.integers(3))
            arm = int(rng.integers(4))
            bandit.update(z, arm, float(-rng.random()))
        allocation = bandit.allocation(rho)
        assert allocation.shape == (3, 4)
        assert (allocation >= -1e-9).all()
        np.testing.assert_allclose(allocation.sum(axis=1), 1.0, atol=1e-6)

    @settings(max_examples=25)
    @given(st.integers(0, 10_000), st.floats(1.0, 20.0))
    def test_expected_cost_within_pace(self, seed, rho):
        rng = np.random.default_rng(seed)
        arms = (1.0, 2.0, 4.0, 8.0)
        bandit = UCBALPBandit(2, arms, exploration=0.0)
        for z in range(2):
            for arm in range(4):
                bandit.update(z, arm, float(-rng.random()))
        allocation = bandit.allocation(rho)
        expected = float((allocation @ np.array(arms) * 0.5).sum())
        assert expected <= max(rho, min(arms)) + 1e-6


class TestTreeProperties:
    @settings(max_examples=25)
    @given(st.integers(0, 10_000), st.integers(5, 60), st.integers(1, 4))
    def test_predictions_finite_and_bounded_by_gradients(self, seed, n, depth):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(n, 3))
        grad = rng.normal(size=n)
        tree = RegressionTree(max_depth=depth, reg_lambda=1.0).fit(x, grad)
        pred = tree.predict(x)
        assert np.isfinite(pred).all()
        # Newton leaves with lambda=1 shrink toward zero: |leaf| <= sum|grad|.
        assert np.abs(pred).max() <= np.abs(grad).sum() + 1e-9

    @settings(max_examples=25)
    @given(st.integers(0, 10_000))
    def test_depth_never_exceeds_cap(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(50, 2))
        grad = rng.normal(size=50)
        tree = RegressionTree(max_depth=3).fit(x, grad)
        assert tree.depth() <= 3
