"""Property-based tests for the metrics package."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.metrics.classification import (
    accuracy,
    classification_report,
    confusion_matrix,
)
from repro.metrics.information import (
    bounded_divergence,
    entropy,
    kl_divergence,
    normalized_entropy,
    symmetric_kl,
)
from repro.metrics.roc import macro_average_roc

labels = st.lists(st.integers(0, 2), min_size=1, max_size=60)


def distributions(k=3):
    return arrays(
        np.float64,
        (k,),
        elements=st.floats(0.01, 10.0, allow_nan=False),
    ).map(lambda v: v / v.sum())


class TestClassificationProperties:
    @given(labels, labels)
    def test_accuracy_in_unit_interval(self, a, b):
        n = min(len(a), len(b))
        if n == 0:
            return
        value = accuracy(a[:n], b[:n])
        assert 0.0 <= value <= 1.0

    @given(labels)
    def test_self_prediction_is_perfect(self, a):
        report = classification_report(a, a)
        assert report.accuracy == 1.0
        # Macro F1 only reaches 1 when every class actually occurs; absent
        # classes legitimately contribute zero to the macro average.
        if set(a) == {0, 1, 2}:
            assert report.f1 == 1.0
        else:
            assert report.f1 <= 1.0

    @given(labels, labels)
    def test_confusion_matrix_total(self, a, b):
        n = min(len(a), len(b))
        if n == 0:
            return
        matrix = confusion_matrix(a[:n], b[:n], n_classes=3)
        assert matrix.sum() == n
        assert (matrix >= 0).all()

    @given(labels, labels)
    def test_metrics_bounded(self, a, b):
        n = min(len(a), len(b))
        if n == 0:
            return
        report = classification_report(a[:n], b[:n], n_classes=3)
        for value in report.as_row():
            assert 0.0 <= value <= 1.0


class TestInformationProperties:
    @given(distributions())
    def test_entropy_bounds(self, p):
        value = entropy(p)
        assert -1e-12 <= value <= np.log(len(p)) + 1e-9

    @given(distributions())
    def test_normalized_entropy_unit_interval(self, p):
        assert 0.0 <= normalized_entropy(p) <= 1.0 + 1e-9

    @given(distributions(), distributions())
    def test_kl_non_negative(self, p, q):
        assert kl_divergence(p, q) >= -1e-9

    @given(distributions(), distributions())
    def test_symmetric_kl_symmetry(self, p, q):
        assert abs(symmetric_kl(p, q) - symmetric_kl(q, p)) < 1e-9

    @given(distributions(), distributions())
    def test_bounded_divergence_unit_interval(self, p, q):
        value = bounded_divergence(p, q)
        assert 0.0 <= value < 1.0

    @given(distributions())
    def test_zero_divergence_to_self(self, p):
        assert bounded_divergence(p, p) < 1e-9


class TestRocProperties:
    @settings(max_examples=30)
    @given(st.integers(0, 10_000))
    def test_macro_roc_auc_in_unit_interval(self, seed):
        rng = np.random.default_rng(seed)
        y = rng.integers(0, 3, size=40)
        if len(np.unique(y)) < 2:
            return
        scores = rng.dirichlet(np.ones(3), size=40)
        curve = macro_average_roc(y, scores)
        assert 0.0 <= curve.auc <= 1.0
        assert np.all(np.diff(curve.fpr) >= 0)

    @settings(max_examples=30)
    @given(st.integers(0, 10_000))
    def test_perfect_scores_auc_one(self, seed):
        rng = np.random.default_rng(seed)
        y = rng.integers(0, 3, size=30)
        if len(np.unique(y)) < 2:
            return
        scores = np.eye(3)[y]
        curve = macro_average_roc(y, scores)
        assert curve.auc > 0.97
