"""Property-based tests: crowd platform and dataset invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crowd.delay import INCENTIVE_LEVELS, DelayModel
from repro.crowd.quality import QualityModel
from repro.data.dataset import build_dataset
from repro.data.export import to_ppm
from repro.data.images import render_scene
from repro.data.metadata import DamageLabel, SceneType
from repro.utils.clock import TemporalContext


class TestDelayModelProperties:
    @settings(max_examples=40)
    @given(
        st.sampled_from(list(TemporalContext)),
        st.floats(0.5, 50.0),
    )
    def test_mean_delay_positive_and_bounded(self, context, incentive):
        model = DelayModel()
        delay = model.mean_delay(context, incentive)
        assert 0 < delay < 3600

    @settings(max_examples=20)
    @given(st.sampled_from(list(TemporalContext)), st.integers(0, 10_000))
    def test_more_money_never_slower_in_expectation(self, context, seed):
        """Mean delay is non-increasing in the incentive, up to plateau noise.

        The calibrated evening/midnight tables wobble by up to ~1% across
        the incentive plateau (Figure 5's flat region), so the monotonicity
        only holds to that tolerance — not exactly.
        """
        model = DelayModel()
        rng = np.random.default_rng(seed)
        a, b = sorted(rng.uniform(1.0, 20.0, size=2))
        assert model.mean_delay(context, b) <= model.mean_delay(context, a) * 1.01

    @settings(max_examples=30)
    @given(
        st.sampled_from(list(TemporalContext)),
        st.sampled_from(INCENTIVE_LEVELS),
        st.integers(0, 10_000),
    )
    def test_samples_positive(self, context, incentive, seed):
        model = DelayModel()
        rng = np.random.default_rng(seed)
        assert model.sample(context, incentive, rng) > 0


class TestQualityModelProperties:
    @settings(max_examples=40)
    @given(st.floats(0.0, 1.0), st.floats(0.5, 50.0))
    def test_effective_accuracy_bounded(self, reliability, incentive):
        model = QualityModel()
        accuracy = model.effective_accuracy(reliability, incentive)
        assert 0.05 <= accuracy <= 0.98

    @settings(max_examples=30)
    @given(st.floats(0.0, 1.0))
    def test_accuracy_monotone_in_incentive(self, reliability):
        model = QualityModel()
        values = [
            model.effective_accuracy(reliability, level)
            for level in INCENTIVE_LEVELS
        ]
        assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))


class TestDatasetProperties:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000), st.integers(12, 60))
    def test_build_dataset_invariants(self, seed, n_images):
        dataset = build_dataset(
            n_images=n_images, rng=np.random.default_rng(seed)
        )
        assert len(dataset) == n_images
        ids = [img.image_id for img in dataset]
        assert len(set(ids)) == n_images
        for image in dataset:
            assert image.pixels.shape == (32, 32, 3)
            assert 0.0 <= image.pixels.min() and image.pixels.max() <= 1.0
            # Deceptive flag consistent with apparent/true label mismatch.
            meta = image.metadata
            if meta.is_deceptive:
                assert meta.apparent_label != meta.true_label

    @settings(max_examples=15, deadline=None)
    @given(
        st.integers(0, 10_000),
        st.sampled_from(list(DamageLabel)),
        st.sampled_from(list(SceneType)),
    )
    def test_render_scene_always_exportable(self, seed, label, scene):
        image = render_scene(label, scene, np.random.default_rng(seed))
        data = to_ppm(image)
        assert data.startswith(b"P6\n")
