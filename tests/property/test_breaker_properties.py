"""Property tests: the serving circuit breaker only takes legal edges.

The breaker's module docstring promises exactly four transitions
(``LEGAL_TRANSITIONS``); these tests drive arbitrary interleavings of
tick outcomes, bulkhead trips and probe attempts through the machine and
assert that promise, plus the invariants resume correctness leans on
(bounded sliding window, exact snapshot/restore, monotone counters).
"""

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.serve.breaker import (
    BREAKER_STATES,
    LEGAL_TRANSITIONS,
    BreakerPolicy,
    CircuitBreaker,
)

#: One driver step: a completed tick (with its failure bit), a bulkhead
#: trip, or a probe attempt.  The driver advances the sensing window by
#: one per step, like the service's virtual-time heap does.
_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("tick"), st.booleans()),
        st.tuples(st.just("trip"), st.just(False)),
        st.tuples(st.just("probe"), st.just(False)),
    ),
    max_size=60,
)

_POLICIES = st.builds(
    BreakerPolicy,
    window=st.integers(1, 8),
    failure_threshold=st.floats(0.1, 1.0),
    min_samples=st.integers(1, 4),
    cooldown_windows=st.integers(1, 3),
    probe_successes=st.integers(1, 3),
    max_probe_rounds=st.integers(0, 3),
)


def drive(breaker, ops):
    """Apply ops the way the service does; return every observed state.

    A tick against an open breaker first attempts the probe (the service
    only ever reaches ``record`` through ``try_half_open``); if no probe
    is due the tick is skipped, exactly like a parked event's window.
    """
    states = [breaker.state]
    for window, (kind, failure) in enumerate(ops):
        if kind == "trip":
            breaker.force_open(window)
            states.append(breaker.state)
        elif kind == "probe":
            breaker.try_half_open(window)
            states.append(breaker.state)
        else:
            if breaker.state == "open":
                if not breaker.try_half_open(window):
                    continue
                states.append(breaker.state)
            breaker.record(failure, window)
            states.append(breaker.state)
    return states


class TestTransitions:
    @settings(max_examples=200)
    @given(_POLICIES, _OPS)
    def test_only_legal_edges_are_taken(self, policy, ops):
        breaker = CircuitBreaker(policy)
        states = drive(breaker, ops)
        assert all(state in BREAKER_STATES for state in states)
        for before, after in zip(states, states[1:]):
            if before != after:
                assert (before, after) in LEGAL_TRANSITIONS

    @settings(max_examples=200)
    @given(_POLICIES, _OPS)
    def test_invariants_hold_under_any_sequence(self, policy, ops):
        breaker = CircuitBreaker(policy)
        drive(breaker, ops)
        assert len(breaker.outcomes) <= policy.window
        assert 0.0 <= breaker.failure_rate() <= 1.0
        assert breaker.probe_rounds <= policy.max_probe_rounds
        if breaker.state == "open":
            assert breaker.opened_at is not None
        # Each half-open follows its own open, each close its own probe.
        assert breaker.half_open_total <= breaker.opened_total
        assert breaker.closed_total <= breaker.half_open_total

    @settings(max_examples=100)
    @given(_POLICIES, st.integers(0, 20))
    def test_open_breaker_admits_no_ticks(self, policy, window):
        breaker = CircuitBreaker(policy)
        breaker.force_open(window)
        with pytest.raises(RuntimeError, match="open breaker"):
            breaker.record(False, window + 1)


class TestSnapshotRestore:
    @settings(max_examples=150)
    @given(_POLICIES, _OPS, _OPS)
    def test_restore_is_exact_and_behaviour_preserving(
        self, policy, prefix, suffix
    ):
        """A restored breaker is bit-identical and diverges never."""
        original = CircuitBreaker(policy)
        drive(original, prefix)
        snapshot = original.snapshot()
        restored = CircuitBreaker.restore(snapshot)
        assert restored.snapshot() == snapshot
        # Feed both the same future; they must stay in lockstep.
        assert drive(original, suffix) == drive(restored, suffix)
        assert original.snapshot() == restored.snapshot()

    def test_restore_rejects_unknown_state(self):
        snapshot = CircuitBreaker().snapshot()
        snapshot["state"] = "molten"
        with pytest.raises(ValueError, match="unknown breaker state"):
            CircuitBreaker.restore(snapshot)
