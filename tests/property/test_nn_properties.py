"""Property-based tests for the NN substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.layers import col2im, im2col
from repro.nn.losses import SoftmaxCrossEntropy, softmax


class TestSoftmaxProperties:
    @settings(max_examples=50)
    @given(st.integers(0, 10_000), st.integers(1, 8), st.integers(2, 6))
    def test_rows_are_distributions(self, seed, n, k):
        rng = np.random.default_rng(seed)
        logits = rng.normal(0, 10, size=(n, k))
        probs = softmax(logits)
        assert np.all(probs >= 0)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-9)

    @settings(max_examples=50)
    @given(st.integers(0, 10_000), st.floats(-100, 100))
    def test_shift_invariance(self, seed, shift):
        rng = np.random.default_rng(seed)
        logits = rng.normal(size=(3, 4))
        np.testing.assert_allclose(
            softmax(logits), softmax(logits + shift), atol=1e-9
        )


class TestIm2ColProperties:
    @settings(max_examples=25)
    @given(
        st.integers(0, 10_000),
        st.integers(1, 3),  # batch
        st.integers(1, 3),  # channels
        st.sampled_from([(4, 2, 1, 0), (6, 3, 1, 1), (8, 2, 2, 0)]),
    )
    def test_adjoint_property(self, seed, n, c, geometry):
        """col2im is the adjoint of im2col: <im2col(x), y> == <x, col2im(y)>.

        This is the exact condition for the conv backward pass to be the
        true gradient, so it pins down correctness without a conv layer.
        """
        size, kernel, stride, pad = geometry
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(n, c, size, size))
        cols, _, _ = im2col(x, kernel, stride, pad)
        y = rng.normal(size=cols.shape)
        lhs = float((cols * y).sum())
        back = col2im(y, x.shape, kernel, stride, pad)
        rhs = float((x * back).sum())
        assert abs(lhs - rhs) < 1e-8 * max(abs(lhs), 1.0)

    @settings(max_examples=25)
    @given(st.integers(0, 10_000))
    def test_patch_count(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(2, 3, 8, 8))
        cols, oh, ow = im2col(x, kernel=3, stride=1, pad=1)
        assert cols.shape == (2 * oh * ow, 3 * 9)


class TestCrossEntropyProperties:
    @settings(max_examples=50)
    @given(st.integers(0, 10_000), st.integers(1, 10))
    def test_loss_non_negative(self, seed, n):
        rng = np.random.default_rng(seed)
        logits = rng.normal(size=(n, 3))
        targets = rng.integers(0, 3, size=n)
        loss = SoftmaxCrossEntropy()
        assert loss.forward(logits, targets) >= 0.0

    @settings(max_examples=50)
    @given(st.integers(0, 10_000))
    def test_gradient_rows_sum_to_zero(self, seed):
        """d(CE)/d(logits) rows sum to 0: softmax gradient conservation."""
        rng = np.random.default_rng(seed)
        logits = rng.normal(size=(5, 3))
        targets = rng.integers(0, 3, size=5)
        loss = SoftmaxCrossEntropy()
        loss.forward(logits, targets)
        grad = loss.backward()
        np.testing.assert_allclose(grad.sum(axis=1), 0.0, atol=1e-12)
