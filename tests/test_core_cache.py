"""Tests for repro.core.cache — the shared prediction/feature cache."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core.cache import BoundedCache, PredictionCache, pool_key
from repro.data.dataset import build_dataset


class _FakeExpert:
    """A predict-counting stand-in for a committee expert."""

    def __init__(self, name: str = "fake", n_classes: int = 3) -> None:
        self.name = name
        self.n_classes = n_classes
        self.model_version = 1
        self.calls = 0

    def predict_proba(self, dataset) -> np.ndarray:
        self.calls += 1
        n = len(dataset)
        return np.full((n, self.n_classes), 1.0 / self.n_classes)


@pytest.fixture(scope="module")
def dataset():
    return build_dataset(n_images=12, rng=np.random.default_rng(0))


class TestPoolKey:
    def test_is_image_id_tuple(self, dataset):
        key = pool_key(dataset)
        assert key == tuple(img.image_id for img in dataset)

    def test_distinguishes_subsets(self, dataset):
        assert pool_key(dataset.subset([0, 1])) != pool_key(dataset.subset([1, 0]))
        assert pool_key(dataset.subset([0, 1])) != pool_key(dataset.subset([0, 2]))

    def test_hashable_and_stable(self, dataset):
        assert hash(pool_key(dataset)) == hash(pool_key(dataset))


class TestBoundedCache:
    def test_get_put_roundtrip(self):
        cache = BoundedCache(4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert "a" in cache
        assert cache.get("missing") is None

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            BoundedCache(0)

    def test_lru_eviction_order(self):
        cache = BoundedCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh "a": "b" becomes least recent
        cache.put("c", 3)
        assert "a" in cache and "c" in cache
        assert "b" not in cache
        assert cache.stats.evictions == 1

    def test_size_never_exceeds_capacity(self):
        cache = BoundedCache(8)
        for i in range(100):
            cache.put(i, i)
            assert len(cache) <= 8
        assert cache.stats.evictions == 92

    def test_invalidate_by_predicate(self):
        cache = BoundedCache(8)
        for i in range(6):
            cache.put(("expert", i), i)
        dropped = cache.invalidate(lambda key: key[1] % 2 == 0)
        assert dropped == 3
        assert len(cache) == 3
        assert cache.stats.invalidations == 3

    def test_stats_track_hits_and_misses(self):
        cache = BoundedCache(4)
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_pickle_drops_entries(self):
        cache = BoundedCache(4)
        cache.put("a", np.arange(3))
        clone = pickle.loads(pickle.dumps(cache))
        assert len(clone) == 0
        assert clone.capacity == 4
        # The original is untouched; the clone works as a fresh store.
        assert cache.get("a") is not None
        clone.put("b", 2)
        assert clone.get("b") == 2


class TestPredictionCache:
    def test_miss_computes_then_hit_serves(self, dataset):
        cache = PredictionCache()
        expert = _FakeExpert()
        first = cache.predict_proba(expert, dataset)
        second = cache.predict_proba(expert, dataset)
        assert expert.calls == 1
        np.testing.assert_array_equal(first, second)
        assert cache.stats()["prediction_hits"] == 1
        assert cache.stats()["prediction_misses"] == 1

    def test_distinct_pools_are_distinct_entries(self, dataset):
        cache = PredictionCache()
        expert = _FakeExpert()
        cache.predict_proba(expert, dataset.subset([0, 1]))
        cache.predict_proba(expert, dataset.subset([2, 3]))
        assert expert.calls == 2

    def test_version_bump_misses(self, dataset):
        cache = PredictionCache()
        expert = _FakeExpert()
        cache.predict_proba(expert, dataset)
        expert.model_version += 1
        cache.predict_proba(expert, dataset)
        assert expert.calls == 2

    def test_stale_versions_dropped_on_miss(self, dataset):
        cache = PredictionCache()
        expert = _FakeExpert()
        cache.predict_proba(expert, dataset)
        expert.model_version += 1
        cache.predict_proba(expert, dataset)
        # The version-1 entry was evicted by the keep_version sweep.
        assert len(cache.predictions) == 1
        assert cache.stats()["prediction_invalidations"] == 1

    def test_invalidate_expert_is_per_expert(self, dataset):
        cache = PredictionCache()
        a, b = _FakeExpert("a"), _FakeExpert("b")
        cache.predict_proba(a, dataset)
        cache.predict_proba(b, dataset)
        cache.invalidate_expert("a")
        cache.predict_proba(a, dataset)
        cache.predict_proba(b, dataset)
        assert a.calls == 2
        assert b.calls == 1

    def test_keep_version_spares_current_entries(self, dataset):
        cache = PredictionCache()
        expert = _FakeExpert()
        cache.predict_proba(expert, dataset)
        cache.invalidate_expert("fake", keep_version=expert.model_version)
        cache.predict_proba(expert, dataset)
        assert expert.calls == 1

    def test_counters_exposed_flat(self, dataset):
        cache = PredictionCache()
        stats = cache.stats()
        for field in ("hits", "misses", "evictions", "invalidations"):
            assert f"prediction_{field}" in stats
            assert f"feature_{field}" in stats
