"""Tests for repro.eval.experiments.chaos (fast-mode structure checks)."""

import pytest

from repro.crowd.faults import FaultPlan
from repro.eval.experiments import default_chaos_plan, run_chaos
from repro.eval.runner import prepare


@pytest.fixture(scope="module")
def setup():
    return prepare(seed=7, fast=True)


@pytest.fixture(scope="module")
def data(setup):
    return run_chaos(setup)


class TestDefaultPlan:
    def test_moderate_rates_and_one_window(self, setup):
        plan = default_chaos_plan(setup)
        assert plan.abandonment_rate == pytest.approx(0.2)
        assert len(plan.outage_windows) == 1
        start, end = plan.outage_windows[0]
        assert 0 <= start < end


class TestRunChaos:
    def test_structure(self, data, setup):
        n = len(data.intensities)
        assert data.intensities[0] == 0.0
        for scheme in ("CrowdLearn", "CrowdLearn-naive", "Ensemble"):
            assert len(data.f1[scheme]) == n
            assert len(data.crowd_delay[scheme]) == n
            assert all(0.0 <= v <= 1.0 for v in data.f1[scheme])
        assert len(data.fault_events) == n
        assert len(data.resilience) == n
        assert data.n_cycles == setup.config.n_cycles

    def test_zero_intensity_is_fault_free(self, data):
        assert data.fault_events[0] == 0
        assert all(v == 0 for v in data.resilience[0].values())
        assert data.cycles_completed["CrowdLearn-naive"][0] == data.n_cycles

    def test_resilient_always_completes(self, data):
        assert all(
            c == data.n_cycles for c in data.cycles_completed["CrowdLearn"]
        )

    def test_faults_fire_at_top_intensity(self, data):
        assert data.fault_events[-1] > 0
        top = data.resilience[-1]
        assert top["retries"] + top["dropped_queries"] + top["fallbacks"] > 0

    def test_naive_truncated_by_outage(self, data):
        assert data.cycles_completed["CrowdLearn-naive"][-1] < data.n_cycles

    def test_ensemble_is_flat(self, data):
        assert len(set(data.f1["Ensemble"])) == 1
        assert all(v == 0.0 for v in data.crowd_delay["Ensemble"])

    def test_render_mentions_everything(self, data):
        text = data.render()
        assert "macro-F1" in text
        assert "crowd delay" in text
        assert "CrowdLearn-naive" in text
        assert "fault_events" in text

    def test_custom_plan_respected(self, setup):
        plan = FaultPlan(abandonment_rate=1.0)
        out = run_chaos(setup, intensities=(1.0,), plan=plan)
        # Total abandonment: every posted query falls back and is refunded.
        assert out.resilience[0]["fallbacks"] > 0
        assert out.cycles_completed["CrowdLearn"] == [setup.config.n_cycles]
