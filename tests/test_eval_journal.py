"""Unit tests for the write-ahead cycle journal (no deployments here;

crash/resume round trips over real runs live in test_crash_recovery.py).
"""

import json

import pytest

from repro.crowd.faults import CrashPoint, FaultInjector, FaultPlan, InjectedCrash
from repro.crowd.tasks import QuestionnaireAnswers, WorkerResponse
from repro.data.metadata import DamageLabel, SceneType
from repro.eval.journal import (
    CycleJournal,
    JournalError,
    JournalReplayError,
    decode_response,
    encode_response,
    heartbeat_writer,
    load_recovery_info,
    read_journal,
    recovery_sidecar_path,
    update_recovery_info,
    wal_tail_summary,
)
from repro.utils.rng import SeedSequencer


def write_sample(path, n_cycles=2):
    journal = CycleJournal.create(path)
    for cycle in range(n_cycles):
        journal.append(cycle, "cycle_start", {"context": "day"})
        journal.append(cycle, "qss", {"indices": [cycle, cycle + 1]})
        journal.append(cycle, "cycle_end", {"cost_cents": 10.0 * cycle})
    journal.close()
    return journal


class TestReadWrite:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "j.journal"
        write_sample(path)
        read = read_journal(path)
        assert read.torn_lines == 0
        assert read.base_cycle == 0
        assert read.max_cycle == 1
        stages = [r["stage"] for r in read.records]
        assert stages[0] == "rotate"
        assert stages.count("cycle_start") == 2
        # seq is dense and ordered
        assert [r["seq"] for r in read.records] == list(range(len(read.records)))

    def test_checksum_failure_ends_prefix(self, tmp_path):
        path = tmp_path / "j.journal"
        write_sample(path)
        lines = path.read_text().splitlines()
        record = json.loads(lines[2])
        record["payload"] = {"indices": [99]}  # tamper without re-checksumming
        lines[2] = json.dumps(record)
        path.write_text("\n".join(lines) + "\n")
        read = read_journal(path)
        assert len(read.records) == 2
        assert read.torn_lines == len(lines) - 2

    def test_torn_tail_tolerated(self, tmp_path):
        path = tmp_path / "j.journal"
        write_sample(path)
        intact = read_journal(path)
        with open(path, "ab") as fh:
            fh.write(b'{"seq": 7, "cycle": 1, "stage": "cqc", "payl')
        read = read_journal(path)
        assert len(read.records) == len(intact.records)
        assert read.torn_lines == 1
        assert read.good_bytes == intact.good_bytes

    def test_resume_truncates_torn_tail(self, tmp_path):
        path = tmp_path / "j.journal"
        write_sample(path, n_cycles=1)
        with open(path, "ab") as fh:
            fh.write(b"garbage that never parses")
        journal, info = CycleJournal.resume(path, 0)
        journal.close()
        assert info["torn_lines"] == 1
        assert read_journal(path).torn_lines == 0

    def test_bad_fsync_policy_rejected(self, tmp_path):
        with pytest.raises(JournalError, match="fsync"):
            CycleJournal(tmp_path / "j.journal", fsync="sometimes")

    @pytest.mark.parametrize("policy", ["always", "rotate", "never"])
    def test_fsync_policies_write_identical_records(self, tmp_path, policy):
        path = tmp_path / f"{policy}.journal"
        journal = CycleJournal.create(path, fsync=policy)
        journal.append(0, "qss", {"indices": [1, 2, 3]})
        journal.close()
        read = read_journal(path)
        assert [r["stage"] for r in read.records] == ["rotate", "qss"]

    def test_append_after_close_raises(self, tmp_path):
        journal = CycleJournal.create(tmp_path / "j.journal")
        journal.close()
        with pytest.raises(JournalError, match="closed"):
            journal.append(0, "qss", {"indices": []})

    def test_rotate_starts_fresh_base(self, tmp_path):
        path = tmp_path / "j.journal"
        journal = CycleJournal.create(path)
        journal.append(0, "cycle_start", {"context": "day"})
        journal.rotate(1)
        journal.append(1, "cycle_start", {"context": "night"})
        journal.close()
        read = read_journal(path)
        assert read.base_cycle == 1
        assert [r["stage"] for r in read.records] == ["rotate", "cycle_start"]


class TestReplay:
    def test_replay_verifies_and_drains(self, tmp_path):
        path = tmp_path / "j.journal"
        write_sample(path, n_cycles=1)
        journal, info = CycleJournal.resume(path, 0)
        assert info["replay_records"] == 3
        assert journal.replaying
        assert journal.peek_replay(0, "cycle_start") == {"context": "day"}
        assert journal.peek_replay(0, "qss") is None
        journal.append(0, "cycle_start", {"context": "day"})
        journal.append(0, "qss", {"indices": [0, 1]})
        journal.append(0, "cycle_end", {"cost_cents": 0.0})
        assert not journal.replaying
        assert journal.replayed_records == 3
        # live appends continue the same file with increasing seq
        record = journal.append(1, "cycle_start", {"context": "day"})
        journal.close()
        assert record["seq"] == 4

    def test_replay_divergence_raises(self, tmp_path):
        path = tmp_path / "j.journal"
        write_sample(path, n_cycles=1)
        journal, _ = CycleJournal.resume(path, 0)
        with pytest.raises(JournalReplayError, match="diverged"):
            journal.append(0, "cycle_start", {"context": "night"})
        journal.close()

    def test_rotate_with_unreached_records_raises(self, tmp_path):
        path = tmp_path / "j.journal"
        write_sample(path, n_cycles=1)
        journal, _ = CycleJournal.resume(path, 0)
        with pytest.raises(JournalReplayError, match="never"):
            journal.rotate(1)
        journal.close()

    def test_trailing_post_intent_is_in_doubt(self, tmp_path):
        path = tmp_path / "j.journal"
        journal = CycleJournal.create(path)
        journal.append(0, "cycle_start", {"context": "day"})
        journal.append(0, "post_intent", {"index": 4, "arm": 1, "incentive": 5.0})
        journal.close()
        resumed, info = CycleJournal.resume(path, 0)
        resumed.close()
        assert info["in_doubt_posts"] == 1

    def test_base_mismatch_quarantines(self, tmp_path):
        path = tmp_path / "j.journal"
        write_sample(path, n_cycles=1)
        journal, info = CycleJournal.resume(path, 3)
        journal.close()
        assert info["quarantined"] == str(path) + ".stale"
        assert (tmp_path / "j.journal.stale").exists()
        # the fresh journal is anchored at the checkpoint's cycle
        assert read_journal(path).base_cycle == 3
        # the quarantined file is intact for post-mortems
        assert read_journal(str(path) + ".stale").base_cycle == 0

    def test_missing_file_starts_fresh(self, tmp_path):
        journal, info = CycleJournal.resume(tmp_path / "none.journal", 2)
        journal.close()
        assert info["replay_records"] == 0
        assert read_journal(tmp_path / "none.journal").base_cycle == 2


class TestCrashPoints:
    def test_parse_full_spec(self):
        point = CrashPoint.parse("post:2:1:kill")
        assert (point.stage, point.cycle, point.occurrence, point.action) == (
            "post", 2, 1, "kill"
        )

    def test_parse_defaults(self):
        point = CrashPoint.parse("cqc")
        assert point.stage == "cqc"
        assert point.cycle is None
        assert point.occurrence == 0
        assert point.action == "raise"

    def test_parse_wildcard_cycle(self):
        assert CrashPoint.parse("qss:*").cycle is None
        assert CrashPoint.parse("qss:3").cycle == 3

    @pytest.mark.parametrize("spec", ["", "qss:x", "qss:1:0:explode"])
    def test_parse_rejects_bad_specs(self, spec):
        with pytest.raises(ValueError):
            CrashPoint.parse(spec)

    def test_boundary_fires_at_occurrence(self):
        plan = FaultPlan(crash_points=(CrashPoint.parse("post:1:1"),))
        injector = FaultInjector(plan, SeedSequencer(0).get("faults"))
        injector.on_stage_boundary("post", 0)
        injector.on_stage_boundary("post", 1)  # occurrence 0: no fire
        with pytest.raises(InjectedCrash):
            injector.on_stage_boundary("post", 1)  # occurrence 1

    def test_disarm_prevents_crash_loop(self):
        plan = FaultPlan(crash_points=(CrashPoint.parse("cqc"),))
        injector = FaultInjector(plan, SeedSequencer(0).get("faults"))
        injector.disarm_crashes()
        injector.on_stage_boundary("cqc", 0)  # no raise

    def test_journal_append_survives_its_crash(self, tmp_path):
        plan = FaultPlan(crash_points=(CrashPoint.parse("qss:0"),))
        injector = FaultInjector(plan, SeedSequencer(0).get("faults"))
        path = tmp_path / "j.journal"
        journal = CycleJournal.create(path, crash_injector=injector)
        journal.append(0, "cycle_start", {"context": "day"})
        with pytest.raises(InjectedCrash):
            journal.append(0, "qss", {"indices": [5]})
        # the record the crash followed is already durable on disk
        read = read_journal(path)
        assert [r["stage"] for r in read.records] == [
            "rotate", "cycle_start", "qss",
        ]


class TestSidecarAndHeartbeat:
    def test_sidecar_accumulates_counters(self, tmp_path):
        journal_path = tmp_path / "j.journal"
        update_recovery_info(journal_path, recovery_restarts=1, note="a")
        update_recovery_info(journal_path, recovery_restarts=2, note="b")
        info = load_recovery_info(journal_path)
        assert info["recovery_restarts"] == 3  # accumulating key adds
        assert info["note"] == "b"  # plain key overwrites
        assert recovery_sidecar_path(journal_path).exists()

    def test_sidecar_missing_or_corrupt_is_empty(self, tmp_path):
        journal_path = tmp_path / "j.journal"
        assert load_recovery_info(journal_path) == {}
        recovery_sidecar_path(journal_path).write_text("{not json")
        assert load_recovery_info(journal_path) == {}

    def test_heartbeat_touches_on_attach_and_call(self, tmp_path):
        import os

        hb = tmp_path / "beat"
        beat = heartbeat_writer(hb)
        assert hb.exists()
        past = hb.stat().st_mtime - 100
        os.utime(hb, (past, past))
        beat({"seq": 0})
        assert hb.stat().st_mtime > past + 50


class TestWalTailSummary:
    """The serving layer's quarantine post-mortem over a WAL tail."""

    def test_missing_file(self, tmp_path):
        assert wal_tail_summary(tmp_path / "nope") == {"exists": False}

    def test_in_doubt_post_is_flagged(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        journal = CycleJournal.create(path, next_cycle=3)
        journal.append(3, "cycle_start", {"cycle": 3})
        journal.append(3, "qss", {"indices": [0, 1]})
        journal.append(3, "post_intent", {"index": 0, "arm": 1})
        journal.close()
        summary = wal_tail_summary(path)
        assert summary["exists"] is True
        assert summary["base_cycle"] == 3
        assert summary["last_cycle"] == 3
        assert summary["last_stage"] == "post_intent"
        assert summary["in_doubt_posts"] == 1
        assert summary["journaled_posts"] == 0
        assert summary["torn_lines"] == 0

    def test_clean_rotated_journal_has_nothing_in_doubt(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        journal = CycleJournal.create(path, next_cycle=0)
        journal.append(0, "post_intent", {"index": 0})
        journal.append(0, "post", {"kind": "posted", "query_id": 11})
        journal.append(0, "cycle_end", {"cost_cents": 2.0})
        summary = wal_tail_summary(path)
        assert summary["in_doubt_posts"] == 0
        assert summary["journaled_posts"] == 1
        journal.rotate(1)
        journal.close()
        rotated = wal_tail_summary(path)
        assert rotated == {
            "exists": True, "records": 1, "torn_lines": 0,
            "base_cycle": 1, "last_cycle": None, "last_stage": None,
            "in_doubt_posts": 0, "journaled_posts": 0,
        }


class TestResponseCodec:
    def test_roundtrip_with_questionnaire(self):
        response = WorkerResponse(
            worker_id=7,
            label=DamageLabel.SEVERE,
            questionnaire=QuestionnaireAnswers(
                says_fake=False,
                scene=SceneType.BUILDING,
                says_people_in_danger=True,
            ),
            delay_seconds=123.25,
        )
        decoded = decode_response(encode_response(response))
        assert decoded == response

    def test_roundtrip_without_questionnaire(self):
        response = WorkerResponse(
            worker_id=0, label=DamageLabel.NO_DAMAGE,
            questionnaire=None, delay_seconds=0.5,
        )
        assert decode_response(encode_response(response)) == response

    def test_encoding_is_json_safe(self):
        response = WorkerResponse(
            worker_id=3, label=DamageLabel.MODERATE,
            questionnaire=None, delay_seconds=9.0,
        )
        json.dumps(encode_response(response))
