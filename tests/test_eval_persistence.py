"""Tests for repro.eval.persistence (JSON result archiving)."""

import json

import numpy as np
import pytest

from repro.eval.baselines import SchemeResult
from repro.eval.persistence import (
    load_results,
    save_results,
    scheme_result_from_dict,
    scheme_result_to_dict,
)
from repro.utils.clock import TemporalContext


@pytest.fixture
def sample_result(rng):
    n = 20
    scores = rng.dirichlet(np.ones(3), size=n)
    return SchemeResult(
        name="CrowdLearn",
        y_true=rng.integers(0, 3, size=n),
        y_pred=rng.integers(0, 3, size=n),
        scores=scores,
        crowd_delays=[300.0, 420.5],
        crowd_delay_contexts=[TemporalContext.MORNING, TemporalContext.EVENING],
        cost_cents=123.5,
    )


class TestDictRoundtrip:
    def test_roundtrip_exact(self, sample_result):
        restored = scheme_result_from_dict(scheme_result_to_dict(sample_result))
        assert restored.name == sample_result.name
        np.testing.assert_array_equal(restored.y_true, sample_result.y_true)
        np.testing.assert_array_equal(restored.y_pred, sample_result.y_pred)
        np.testing.assert_allclose(restored.scores, sample_result.scores)
        assert restored.crowd_delays == sample_result.crowd_delays
        assert restored.crowd_delay_contexts == sample_result.crowd_delay_contexts
        assert restored.cost_cents == sample_result.cost_cents

    def test_dict_is_json_safe(self, sample_result):
        json.dumps(scheme_result_to_dict(sample_result))

    def test_missing_field_raises(self, sample_result):
        data = scheme_result_to_dict(sample_result)
        del data["scores"]
        with pytest.raises(ValueError, match="missing field"):
            scheme_result_from_dict(data)

    def test_metrics_survive_roundtrip(self, sample_result):
        from repro.metrics.classification import classification_report

        restored = scheme_result_from_dict(scheme_result_to_dict(sample_result))
        original = classification_report(sample_result.y_true, sample_result.y_pred)
        after = classification_report(restored.y_true, restored.y_pred)
        assert original == after


class TestFileRoundtrip:
    def test_save_load(self, sample_result, tmp_path):
        path = tmp_path / "results.json"
        save_results(
            {"CrowdLearn": sample_result},
            path,
            metadata={"seed": 1, "note": "unit test"},
        )
        results, metadata = load_results(path)
        assert set(results) == {"CrowdLearn"}
        assert metadata["seed"] == 1
        np.testing.assert_array_equal(
            results["CrowdLearn"].y_true, sample_result.y_true
        )

    def test_empty_metadata_default(self, sample_result, tmp_path):
        path = save_results({"x": sample_result}, tmp_path / "r.json")
        _, metadata = load_results(path)
        assert metadata == {}

    def test_version_mismatch_rejected(self, sample_result, tmp_path):
        path = tmp_path / "r.json"
        save_results({"x": sample_result}, path)
        payload = json.loads(path.read_text())
        payload["format_version"] = 99
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="format version"):
            load_results(path)

    def test_atomic_write_leaves_no_tmp(self, sample_result, tmp_path):
        path = tmp_path / "r.json"
        save_results({"x": sample_result}, path)
        save_results({"x": sample_result}, path)  # overwrite via os.replace
        assert path.exists()
        assert not (tmp_path / "r.json.tmp").exists()
        results, _ = load_results(path)
        assert set(results) == {"x"}

    def test_multiple_schemes(self, sample_result, tmp_path):
        other = scheme_result_from_dict(scheme_result_to_dict(sample_result))
        other.name = "VGG16"
        path = save_results(
            {"CrowdLearn": sample_result, "VGG16": other}, tmp_path / "r.json"
        )
        results, _ = load_results(path)
        assert set(results) == {"CrowdLearn", "VGG16"}
