"""Tests for repro.eval.reporting."""

import pytest

from repro.eval.reporting import format_context_table, format_series, format_table


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table(
            ["Name", "Score"], [["alpha", 0.5], ["b", 1.0]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "Name" in lines[1] and "Score" in lines[1]
        assert "alpha" in lines[3]
        assert "0.500" in lines[3]

    def test_column_alignment(self):
        text = format_table(["A", "B"], [["xxxx", 1.0], ["y", 2.0]])
        lines = text.splitlines()
        # Separator line matches header width.
        assert len(lines[1]) == len(lines[0])

    def test_float_format_respected(self):
        text = format_table(["V"], [[0.123456]], float_format="{:.1f}")
        assert "0.1" in text and "0.123" not in text

    def test_non_floats_stringified(self):
        text = format_table(["V"], [[7]])
        assert "7" in text

    def test_ragged_row_raises(self):
        with pytest.raises(ValueError):
            format_table(["A", "B"], [["only-one"]])

    def test_empty_headers_raise(self):
        with pytest.raises(ValueError):
            format_table([], [])

    def test_empty_rows_ok(self):
        text = format_table(["A"], [])
        assert "A" in text


class TestFormatSeries:
    def test_one_row_per_x(self):
        text = format_series(
            "x", [1, 2, 3], {"s1": [0.1, 0.2, 0.3], "s2": [1.0, 2.0, 3.0]}
        )
        assert len(text.splitlines()) == 2 + 3

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_series("x", [1, 2], {"s": [0.1]})


class TestFormatContextTable:
    def test_overall_column_is_mean(self):
        rows = {"CQC": {"m": 0.9, "e": 0.7}}
        text = format_context_table("Scheme", rows, ["m", "e"])
        assert "0.800" in text  # (0.9 + 0.7) / 2

    def test_multiple_schemes(self):
        rows = {
            "A": {"m": 1.0, "e": 1.0},
            "B": {"m": 0.0, "e": 0.0},
        }
        text = format_context_table("Scheme", rows, ["m", "e"])
        assert "A" in text and "B" in text
