"""Tests for repro.bandit.budget."""

import pytest

from repro.bandit.budget import BudgetExhausted, BudgetLedger


class TestBudgetLedger:
    def test_initial_state(self):
        ledger = BudgetLedger(100.0)
        assert ledger.total == 100.0
        assert ledger.spent == 0.0
        assert ledger.remaining == 100.0
        assert ledger.n_charges == 0

    def test_charge_accumulates(self):
        ledger = BudgetLedger(100.0)
        ledger.charge(30.0)
        ledger.charge(20.0)
        assert ledger.spent == pytest.approx(50.0)
        assert ledger.remaining == pytest.approx(50.0)
        assert ledger.n_charges == 2

    def test_charge_returns_remaining(self):
        ledger = BudgetLedger(10.0)
        assert ledger.charge(4.0) == pytest.approx(6.0)

    def test_overcharge_raises_and_preserves_state(self):
        ledger = BudgetLedger(10.0)
        ledger.charge(8.0)
        with pytest.raises(BudgetExhausted):
            ledger.charge(5.0)
        assert ledger.spent == pytest.approx(8.0)

    def test_exact_exhaustion_allowed(self):
        ledger = BudgetLedger(10.0)
        ledger.charge(10.0)
        assert ledger.remaining == pytest.approx(0.0)

    def test_can_afford(self):
        ledger = BudgetLedger(10.0)
        assert ledger.can_afford(10.0)
        assert not ledger.can_afford(10.5)
        assert not ledger.can_afford(-1.0)

    def test_negative_charge_raises(self):
        with pytest.raises(ValueError):
            BudgetLedger(10.0).charge(-1.0)

    def test_zero_charge_allowed(self):
        ledger = BudgetLedger(10.0)
        ledger.charge(0.0)
        assert ledger.spent == 0.0

    def test_nonpositive_budget_raises(self):
        with pytest.raises(ValueError):
            BudgetLedger(0.0)
        with pytest.raises(ValueError):
            BudgetLedger(-5.0)

    def test_float_tolerance_at_boundary(self):
        ledger = BudgetLedger(0.3)
        ledger.charge(0.1)
        ledger.charge(0.1)
        ledger.charge(0.1)  # 0.1*3 > 0.3 in floats; tolerance must absorb it
        assert ledger.remaining == pytest.approx(0.0, abs=1e-9)
