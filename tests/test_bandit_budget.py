"""Tests for repro.bandit.budget."""

import pytest

from repro.bandit.budget import BudgetExhausted, BudgetLedger


class TestBudgetLedger:
    def test_initial_state(self):
        ledger = BudgetLedger(100.0)
        assert ledger.total == 100.0
        assert ledger.spent == 0.0
        assert ledger.remaining == 100.0
        assert ledger.n_charges == 0

    def test_charge_accumulates(self):
        ledger = BudgetLedger(100.0)
        ledger.charge(30.0)
        ledger.charge(20.0)
        assert ledger.spent == pytest.approx(50.0)
        assert ledger.remaining == pytest.approx(50.0)
        assert ledger.n_charges == 2

    def test_charge_returns_remaining(self):
        ledger = BudgetLedger(10.0)
        assert ledger.charge(4.0) == pytest.approx(6.0)

    def test_overcharge_raises_and_preserves_state(self):
        ledger = BudgetLedger(10.0)
        ledger.charge(8.0)
        with pytest.raises(BudgetExhausted):
            ledger.charge(5.0)
        assert ledger.spent == pytest.approx(8.0)

    def test_exact_exhaustion_allowed(self):
        ledger = BudgetLedger(10.0)
        ledger.charge(10.0)
        assert ledger.remaining == pytest.approx(0.0)

    def test_can_afford(self):
        ledger = BudgetLedger(10.0)
        assert ledger.can_afford(10.0)
        assert not ledger.can_afford(10.5)
        assert not ledger.can_afford(-1.0)

    def test_negative_charge_raises(self):
        with pytest.raises(ValueError):
            BudgetLedger(10.0).charge(-1.0)

    def test_zero_charge_allowed(self):
        ledger = BudgetLedger(10.0)
        ledger.charge(0.0)
        assert ledger.spent == 0.0

    def test_nonpositive_budget_raises(self):
        with pytest.raises(ValueError):
            BudgetLedger(0.0)
        with pytest.raises(ValueError):
            BudgetLedger(-5.0)

    def test_float_tolerance_at_boundary(self):
        ledger = BudgetLedger(0.3)
        ledger.charge(0.1)
        ledger.charge(0.1)
        ledger.charge(0.1)  # 0.1*3 > 0.3 in floats; tolerance must absorb it
        assert ledger.remaining == pytest.approx(0.0, abs=1e-9)


class TestNonFiniteAmounts:
    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_charge_rejects(self, bad):
        ledger = BudgetLedger(10.0)
        with pytest.raises(ValueError, match="non-finite"):
            ledger.charge(bad)
        assert ledger.spent == 0.0

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_can_afford_rejects(self, bad):
        with pytest.raises(ValueError, match="non-finite"):
            BudgetLedger(10.0).can_afford(bad)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf")])
    def test_refund_rejects(self, bad):
        ledger = BudgetLedger(10.0)
        ledger.charge(5.0)
        with pytest.raises(ValueError, match="non-finite"):
            ledger.refund(bad)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf")])
    def test_total_rejects(self, bad):
        with pytest.raises(ValueError, match="finite"):
            BudgetLedger(bad)


class TestRefund:
    def test_refund_restores_remaining(self):
        ledger = BudgetLedger(10.0)
        ledger.charge(6.0)
        assert ledger.refund(4.0) == pytest.approx(8.0)
        assert ledger.spent == pytest.approx(2.0)
        assert ledger.n_refunds == 1
        assert ledger.total_refunded == pytest.approx(4.0)

    def test_refunded_budget_is_spendable_again(self):
        ledger = BudgetLedger(10.0)
        ledger.charge(10.0)
        with pytest.raises(BudgetExhausted):
            ledger.charge(1.0)
        ledger.refund(5.0)
        ledger.charge(5.0)  # the returned money can be re-spent
        assert ledger.remaining == pytest.approx(0.0)

    def test_refund_more_than_spent_raises(self):
        ledger = BudgetLedger(10.0)
        ledger.charge(3.0)
        with pytest.raises(ValueError, match="exceeds net spending"):
            ledger.refund(4.0)

    def test_negative_refund_raises(self):
        with pytest.raises(ValueError):
            BudgetLedger(10.0).refund(-1.0)

    def test_full_refund_leaves_clean_slate(self):
        ledger = BudgetLedger(10.0)
        ledger.charge(7.0)
        ledger.refund(7.0)
        assert ledger.spent == pytest.approx(0.0)
        assert ledger.remaining == pytest.approx(10.0)
        assert ledger.n_charges == 1  # history is kept, spending is net
