"""Tests for repro.nn.layers, including numerical gradient checks.

Every layer's hand-written backward pass is verified against central-
difference numerical gradients — the canonical correctness test for a
from-scratch NN substrate.
"""

import numpy as np
import pytest

from repro.nn.layers import (
    BatchNorm,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    FusedConvReLU,
    FusedConvReLUPool,
    MaxPool2D,
    ReLU,
    Softmax,
    col2im,
    fuse_layers,
    im2col,
)


def numerical_grad(f, x, eps=1e-5):
    """Central-difference gradient of scalar f w.r.t. array x."""
    grad = np.zeros_like(x)
    flat = x.ravel()
    grad_flat = grad.ravel()
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        f_plus = f()
        flat[i] = orig - eps
        f_minus = f()
        flat[i] = orig
        grad_flat[i] = (f_plus - f_minus) / (2 * eps)
    return grad


def check_input_gradient(layer, x, atol=1e-6, training_loss=False):
    """Compare layer.backward's input gradient to the numerical one.

    ``training_loss`` evaluates the numerical loss in training mode, needed
    for layers (BatchNorm) whose backward is w.r.t. batch statistics.
    """
    out = layer.forward(x, training=True)
    upstream = np.random.default_rng(0).normal(size=out.shape)
    analytic = layer.backward(upstream)

    def loss():
        return float(
            (layer.forward(x, training=training_loss) * upstream).sum()
        )

    numeric = numerical_grad(loss, x)
    np.testing.assert_allclose(analytic, numeric, atol=atol, rtol=1e-4)


def check_param_gradients(layer, x, atol=1e-6):
    """Compare layer parameter gradients to numerical ones."""
    out = layer.forward(x, training=True)
    upstream = np.random.default_rng(1).normal(size=out.shape)
    layer.zero_grad()
    layer.backward(upstream)
    for param, grad in zip(layer.params(), layer.grads()):
        def loss():
            return float((layer.forward(x, training=False) * upstream).sum())

        numeric = numerical_grad(loss, param)
        np.testing.assert_allclose(grad, numeric, atol=atol, rtol=1e-4)


class TestDense:
    def test_forward_shape(self, rng):
        layer = Dense(4, 3, rng)
        assert layer.forward(np.ones((5, 4))).shape == (5, 3)

    def test_forward_linear(self, rng):
        layer = Dense(2, 2, rng)
        x = rng.normal(size=(3, 2))
        np.testing.assert_allclose(layer.forward(x), x @ layer.weight + layer.bias)

    def test_input_gradient(self, rng):
        layer = Dense(4, 3, rng)
        check_input_gradient(layer, rng.normal(size=(3, 4)))

    def test_param_gradients(self, rng):
        layer = Dense(3, 2, rng)
        check_param_gradients(layer, rng.normal(size=(4, 3)))

    def test_backward_before_forward_raises(self, rng):
        with pytest.raises(RuntimeError):
            Dense(2, 2, rng).backward(np.ones((1, 2)))

    def test_bad_input_shape_raises(self, rng):
        with pytest.raises(ValueError):
            Dense(4, 3, rng).forward(np.ones((5, 5)))

    def test_state_roundtrip(self, rng):
        a, b = Dense(3, 2, rng), Dense(3, 2, rng)
        b.load_state(a.state())
        np.testing.assert_array_equal(a.weight, b.weight)


class TestIm2Col:
    def test_roundtrip_counts_overlaps(self, rng):
        x = rng.normal(size=(2, 3, 6, 6))
        cols, oh, ow = im2col(x, kernel=3, stride=1, pad=1)
        assert (oh, ow) == (6, 6)
        back = col2im(cols, x.shape, kernel=3, stride=1, pad=1)
        # col2im sums overlapping contributions; the center of a 3x3/stride-1
        # kernel with pad 1 is visited 9 times.
        assert back.shape == x.shape

    def test_stride_two(self, rng):
        x = rng.normal(size=(1, 1, 8, 8))
        cols, oh, ow = im2col(x, kernel=2, stride=2, pad=0)
        assert (oh, ow) == (4, 4)
        assert cols.shape == (16, 4)

    def test_too_large_kernel_raises(self, rng):
        with pytest.raises(ValueError):
            im2col(rng.normal(size=(1, 1, 3, 3)), kernel=5, stride=1, pad=0)


class TestConv2D:
    def test_forward_shape(self, rng):
        layer = Conv2D(3, 5, kernel=3, rng=rng, pad=1)
        assert layer.forward(np.ones((2, 3, 8, 8))).shape == (2, 5, 8, 8)

    def test_matches_naive_convolution(self, rng):
        layer = Conv2D(1, 1, kernel=3, rng=rng, pad=0)
        x = rng.normal(size=(1, 1, 5, 5))
        out = layer.forward(x)
        # Naive cross-correlation at one position.
        manual = (
            x[0, 0, 1:4, 1:4] * layer.weight[0, 0]
        ).sum() + layer.bias[0]
        assert out[0, 0, 1, 1] == pytest.approx(manual)

    def test_input_gradient(self, rng):
        layer = Conv2D(2, 3, kernel=3, rng=rng, pad=1)
        check_input_gradient(layer, rng.normal(size=(2, 2, 5, 5)), atol=1e-5)

    def test_param_gradients(self, rng):
        layer = Conv2D(1, 2, kernel=2, rng=rng)
        check_param_gradients(layer, rng.normal(size=(2, 1, 4, 4)), atol=1e-5)

    def test_stride(self, rng):
        layer = Conv2D(1, 1, kernel=2, rng=rng, stride=2)
        assert layer.forward(np.ones((1, 1, 8, 8))).shape == (1, 1, 4, 4)

    def test_channel_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            Conv2D(3, 4, kernel=3, rng=rng).forward(np.ones((1, 2, 8, 8)))


class TestMaxPool2D:
    def test_forward_values(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = MaxPool2D(2).forward(x)
        np.testing.assert_array_equal(out[0, 0], [[5, 7], [13, 15]])

    def test_input_gradient(self, rng):
        layer = MaxPool2D(2)
        check_input_gradient(layer, rng.normal(size=(2, 2, 4, 4)))

    def test_gradient_routes_to_max_only(self):
        x = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])
        layer = MaxPool2D(2)
        layer.forward(x, training=True)
        grad = layer.backward(np.array([[[[1.0]]]]))
        np.testing.assert_array_equal(grad, [[[[0, 0], [0, 1.0]]]])

    def test_indivisible_raises(self):
        with pytest.raises(ValueError):
            MaxPool2D(3).forward(np.ones((1, 1, 4, 4)))


class TestReLU:
    def test_forward(self):
        out = ReLU().forward(np.array([-1.0, 0.0, 2.0]))
        np.testing.assert_array_equal(out, [0.0, 0.0, 2.0])

    def test_input_gradient(self, rng):
        # Keep inputs away from the kink at 0.
        x = rng.normal(size=(3, 4))
        x[np.abs(x) < 0.1] = 0.5
        check_input_gradient(ReLU(), x)


class TestFlatten:
    def test_roundtrip(self, rng):
        layer = Flatten()
        x = rng.normal(size=(2, 3, 4, 4))
        out = layer.forward(x, training=True)
        assert out.shape == (2, 48)
        grad = layer.backward(out)
        np.testing.assert_array_equal(grad, x)


class TestDropout:
    def test_inference_is_identity(self, rng):
        layer = Dropout(0.5, rng)
        x = rng.normal(size=(4, 4))
        np.testing.assert_array_equal(layer.forward(x, training=False), x)

    def test_training_preserves_expectation(self, rng):
        layer = Dropout(0.3, rng)
        x = np.ones((200, 200))
        out = layer.forward(x, training=True)
        assert out.mean() == pytest.approx(1.0, abs=0.02)

    def test_zero_rate_is_identity_in_training(self, rng):
        layer = Dropout(0.0, rng)
        x = rng.normal(size=(3, 3))
        np.testing.assert_array_equal(layer.forward(x, training=True), x)

    def test_invalid_rate_raises(self, rng):
        with pytest.raises(ValueError):
            Dropout(1.0, rng)


class TestBatchNorm:
    def test_training_normalizes(self, rng):
        layer = BatchNorm(4)
        x = rng.normal(3.0, 2.0, size=(100, 4))
        out = layer.forward(x, training=True)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-7)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-3)

    def test_input_gradient(self, rng):
        layer = BatchNorm(3)
        check_input_gradient(
            layer, rng.normal(size=(6, 3)), atol=1e-5, training_loss=True
        )

    def test_4d_input(self, rng):
        layer = BatchNorm(2)
        x = rng.normal(size=(3, 2, 4, 4))
        assert layer.forward(x, training=True).shape == x.shape

    def test_running_stats_used_at_inference(self, rng):
        layer = BatchNorm(2, momentum=0.0)
        x = rng.normal(5.0, 1.0, size=(50, 2))
        layer.forward(x, training=True)
        out = layer.forward(x, training=False)
        assert abs(out.mean()) < 0.2

    def test_state_roundtrip(self, rng):
        a, b = BatchNorm(3), BatchNorm(3)
        a.forward(rng.normal(size=(10, 3)), training=True)
        b.load_state(a.state())
        np.testing.assert_array_equal(a.running_mean, b.running_mean)


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        out = Softmax().forward(rng.normal(size=(5, 3)))
        np.testing.assert_allclose(out.sum(axis=1), 1.0)

    def test_input_gradient(self, rng):
        check_input_gradient(Softmax(), rng.normal(size=(3, 4)))

    def test_shift_invariance(self, rng):
        layer = Softmax()
        x = rng.normal(size=(2, 3))
        np.testing.assert_allclose(layer.forward(x), layer.forward(x + 100.0))


class TestFusedKernelParity:
    """Fused conv blocks are an execution strategy, not a new computation.

    Forward activations, input gradients and parameter gradients must be
    bit-identical (``np.array_equal``, no tolerance) to the layer-by-layer
    path — the fused kernels reorganize memory traffic, never arithmetic.
    """

    def _stacks(self, seed=0):
        import copy

        rng = np.random.default_rng(seed)
        naive = [
            Conv2D(3, 5, kernel=3, rng=rng, pad=1),
            ReLU(),
            MaxPool2D(2),
            Conv2D(5, 7, kernel=3, rng=rng, pad=0, stride=2),
            ReLU(),
        ]
        return naive, fuse_layers(copy.deepcopy(naive))

    @staticmethod
    def _forward(layers, x, training):
        out = x
        for layer in layers:
            out = layer.forward(out, training=training)
        return out

    @staticmethod
    def _backward(layers, grad):
        for layer in reversed(layers):
            grad = layer.backward(grad)
        return grad

    def test_fuse_collapses_blocks(self):
        _, fused = self._stacks()
        assert len(fused) == 2
        assert type(fused[0]) is FusedConvReLUPool
        assert type(fused[1]) is FusedConvReLU

    @pytest.mark.parametrize("training", [False, True])
    def test_forward_bit_identical(self, training):
        naive, fused = self._stacks()
        x = np.random.default_rng(1).normal(size=(4, 3, 12, 12))
        assert np.array_equal(
            self._forward(naive, x, training),
            self._forward(fused, x, training),
        )

    def test_backward_and_param_grads_bit_identical(self):
        naive, fused = self._stacks()
        rng = np.random.default_rng(2)
        x = rng.normal(size=(4, 3, 12, 12))
        out = self._forward(naive, x, training=True)
        assert np.array_equal(out, self._forward(fused, x, training=True))
        upstream = rng.normal(size=out.shape)
        grad_naive = self._backward(naive, upstream)
        grad_fused = self._backward(fused, upstream)
        assert np.array_equal(grad_naive, grad_fused)
        naive_grads = [g for layer in naive for g in layer.grads()]
        fused_grads = [g for layer in fused for g in layer.grads()]
        assert len(naive_grads) == len(fused_grads) == 4  # 2x (weight, bias)
        for gn, gf in zip(naive_grads, fused_grads):
            assert np.array_equal(gn, gf)

    def test_small_channel_path_bit_identical(self):
        """The strided-gather / loop-gather split must not change values.

        A 1-input-channel stack keeps ``c * k * k`` under the gather
        threshold, exercising the loop path; the wide stack above takes the
        as_strided path.  Both must match the reference exactly.
        """
        import copy

        rng = np.random.default_rng(3)
        naive = [Conv2D(1, 3, kernel=2, rng=rng, pad=1), ReLU(), MaxPool2D(2)]
        fused = fuse_layers(copy.deepcopy(naive))
        x = np.random.default_rng(4).normal(size=(2, 1, 9, 9))
        out = self._forward(naive, x, training=True)
        assert np.array_equal(out, self._forward(fused, x, training=True))
        upstream = np.random.default_rng(5).normal(size=out.shape)
        assert np.array_equal(
            self._backward(naive, upstream), self._backward(fused, upstream)
        )

    def test_fuse_clears_stale_backward_caches(self):
        """Fusing after a training step must drop the wrapped layers' caches.

        Without this, snapshots of freshly-fused models would carry the
        last pre-fusion minibatch (im2col patches, pool masks) forever.
        """
        naive, _ = self._stacks()
        x = np.random.default_rng(6).normal(size=(4, 3, 12, 12))
        self._forward(naive, x, training=True)  # populate every cache
        fused = fuse_layers(naive)
        block = fused[0]
        assert block.conv._cols is None and block.conv._x_shape is None
        assert block.relu._mask is None
        assert block.pool._mask is None and block.pool._x_shape is None
