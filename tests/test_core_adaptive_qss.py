"""Tests for the VDBE adaptive query-set selector (paper ref [37])."""

import dataclasses

import numpy as np
import pytest

from repro.core.qss import AdaptiveQuerySetSelector


class TestVdbeUpdate:
    def test_sustained_surprise_raises_epsilon(self):
        selector = AdaptiveQuerySetSelector(initial_epsilon=0.1)
        for _ in range(20):
            selector.observe_surprise(0.9)
        assert selector.epsilon > 0.5

    def test_sustained_agreement_decays_epsilon(self):
        selector = AdaptiveQuerySetSelector(initial_epsilon=0.5)
        for _ in range(50):
            selector.observe_surprise(0.0)
        assert selector.epsilon == pytest.approx(selector.epsilon_bounds[0])

    def test_bounds_respected(self):
        selector = AdaptiveQuerySetSelector(
            initial_epsilon=0.2, epsilon_bounds=(0.1, 0.4)
        )
        for _ in range(100):
            selector.observe_surprise(5.0)
        assert selector.epsilon <= 0.4
        for _ in range(100):
            selector.observe_surprise(0.0)
        assert selector.epsilon >= 0.1

    def test_update_is_smooth(self):
        selector = AdaptiveQuerySetSelector(initial_epsilon=0.2, delta=0.1)
        before = selector.epsilon
        after = selector.observe_surprise(1.0)
        assert abs(after - before) <= 0.1  # one step moves at most delta

    def test_zero_surprise_targets_zero(self):
        selector = AdaptiveQuerySetSelector(
            initial_epsilon=0.5, delta=1.0, epsilon_bounds=(0.0, 1.0)
        )
        assert selector.observe_surprise(0.0) == pytest.approx(0.0)

    def test_monotone_in_surprise(self):
        low = AdaptiveQuerySetSelector(initial_epsilon=0.2, delta=1.0)
        high = AdaptiveQuerySetSelector(initial_epsilon=0.2, delta=1.0)
        low.observe_surprise(0.1)
        high.observe_surprise(0.9)
        assert high.epsilon > low.epsilon

    def test_negative_surprise_raises(self):
        with pytest.raises(ValueError):
            AdaptiveQuerySetSelector().observe_surprise(-0.1)

    def test_invalid_params_raise(self):
        with pytest.raises(ValueError):
            AdaptiveQuerySetSelector(delta=0.0)
        with pytest.raises(ValueError):
            AdaptiveQuerySetSelector(sigma=0.0)
        with pytest.raises(ValueError):
            AdaptiveQuerySetSelector(epsilon_bounds=(0.5, 0.4))

    def test_still_selects_like_base_class(self, rng):
        selector = AdaptiveQuerySetSelector(initial_epsilon=0.0)
        entropy = np.array([0.1, 0.9, 0.5])
        chosen = selector.select(entropy, 1, rng)
        assert chosen[0] == 1


class TestSystemIntegration:
    def test_adaptive_qss_runs_in_the_loop(self):
        from repro.eval.runner import build_crowdlearn, prepare

        setup = prepare(seed=29, fast=True)
        config = dataclasses.replace(setup.config, qss_adaptive=True)
        system = build_crowdlearn(setup, config=config)
        assert isinstance(system.qss, AdaptiveQuerySetSelector)
        initial_epsilon = system.qss.epsilon
        outcome = system.run(setup.make_stream("adaptive-qss"))
        # The loop ran and ε moved in response to crowd feedback.
        assert outcome.y_pred().shape == outcome.y_true().shape
        assert system.qss.epsilon != initial_epsilon
