"""Crash/recovery tests for the serving layer.

The serve fault model (docs/FAULT_MODEL.md) promises that a SIGKILL at
any point leaves the fleet resumable with byte-identical results.  These
tests cover the kill windows in-process (abandoning a durable service
mid-run), the one genuinely asymmetric window — an event checkpoint made
durable but its serve-journal admission record lost — by truncating the
journal, and the real thing: a subprocess SIGKILLed via
``repro loadgen --crash-at-tick`` and resumed through the CLI.
"""

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.eval.runner import prepare
from repro.serve import CrowdLearnService, SharedCrowdPool
from repro.serve.service import ServeJournalError, _read_serve_journal


@pytest.fixture(scope="module")
def setup():
    return prepare(seed=13, fast=True)


def make_service(setup, serve_dir=None):
    pool = SharedCrowdPool(capacity_per_cycle=4, max_backlog=3)
    return CrowdLearnService(setup, pool=pool, serve_dir=serve_dir)


def surge_timeline(service, interrupt_after=None):
    """Submit two events, burst the first mid-run, run to drain (or stop)."""
    service.submit_event("alpha", priority=2.0)
    service.submit_event("bravo")
    ticks = 0
    while True:
        if interrupt_after is not None and ticks >= interrupt_after:
            return
        if ticks == 5:
            service.ingest_images("alpha", n_images=8, burst_seed=42)
        if service.step() is None:
            return
        ticks += 1


@pytest.fixture(scope="module")
def reference(setup):
    """Digest and books of the uninterrupted surge timeline."""
    service = make_service(setup)
    surge_timeline(service)
    return service.combined_digest(), service.pool.totals()


class TestResume:
    @pytest.mark.parametrize("interrupt_after", [1, 5, 6, 9])
    def test_abandon_and_resume_matches_uninterrupted(
        self, setup, reference, tmp_path, interrupt_after
    ):
        serve_dir = tmp_path / "fleet"
        service = make_service(setup, serve_dir=serve_dir)
        surge_timeline(service, interrupt_after=interrupt_after)
        # Simulate a crash: no close(), no further appends.
        resumed = CrowdLearnService.resume(serve_dir, setup=setup)
        # The burst must land if the crash predated it (same timeline).
        if not resumed.registry.get("alpha").bursts:
            while resumed.ticks < 5:
                resumed.step()
            resumed.ingest_images("alpha", n_images=8, burst_seed=42)
        resumed.drain()
        digest, totals = reference
        assert resumed.combined_digest() == digest
        assert resumed.pool.totals() == totals
        assert resumed.pool.conserved()
        resumed.close()

    def test_missing_tick_record_is_reconstructed(
        self, setup, reference, tmp_path
    ):
        """Kill window (c): event checkpoint durable, serve append lost."""
        serve_dir = tmp_path / "fleet"
        service = make_service(setup, serve_dir=serve_dir)
        surge_timeline(service, interrupt_after=7)
        journal_path = serve_dir / "serve.journal"
        lines = journal_path.read_text().splitlines()
        assert json.loads(lines[-1])["record"]["kind"] == "tick"
        journal_path.write_text("\n".join(lines[:-1]) + "\n")

        resumed = CrowdLearnService.resume(serve_dir, setup=setup)
        records = _read_serve_journal(journal_path)
        assert records[-1]["kind"] == "tick"
        assert records[-1].get("reconstructed") is True
        resumed.drain()
        digest, totals = reference
        assert resumed.combined_digest() == digest
        assert resumed.pool.totals() == totals
        resumed.close()

    def test_torn_tail_is_tolerated(self, setup, tmp_path):
        serve_dir = tmp_path / "fleet"
        service = make_service(setup, serve_dir=serve_dir)
        service.submit_event("alpha")
        for _ in range(2):
            service.step()
        journal_path = serve_dir / "serve.journal"
        with open(journal_path, "a") as fh:
            fh.write('{"record": {"kind": "tick", "trunc')
        resumed = CrowdLearnService.resume(serve_dir, setup=setup)
        assert resumed.registry.get("alpha").next_cycle == 2
        resumed.close()

    def test_corrupt_middle_record_raises(self, setup, tmp_path):
        serve_dir = tmp_path / "fleet"
        service = make_service(setup, serve_dir=serve_dir)
        service.submit_event("alpha")
        for _ in range(3):
            service.step()
        journal_path = serve_dir / "serve.journal"
        lines = journal_path.read_text().splitlines()
        lines[1] = lines[1].replace('"kind"', '"kinD"')
        journal_path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ServeJournalError, match="corrupt"):
            CrowdLearnService.resume(serve_dir, setup=setup)

    def test_resume_without_manifest_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="manifest"):
            CrowdLearnService.resume(tmp_path / "nowhere")

    def test_resume_restores_tick_counter(self, setup, tmp_path):
        serve_dir = tmp_path / "fleet"
        service = make_service(setup, serve_dir=serve_dir)
        surge_timeline(service, interrupt_after=6)
        resumed = CrowdLearnService.resume(serve_dir, setup=setup)
        assert resumed.ticks == 6
        resumed.close()


class TestSigkillSubprocess:
    """The real crash drill: SIGKILL mid-run, supervised CLI resume."""

    def _loadgen(self, tmp_path, *extra):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(__file__).resolve().parents[1] / "src")
        return subprocess.run(
            [
                sys.executable, "-m", "repro", "loadgen",
                "--seed", "13", "--events", "2",
                "--serve-dir", str(tmp_path / "fleet"),
                "--output", str(tmp_path / "bench.json"),
                *extra,
            ],
            env=env,
            capture_output=True,
            text=True,
            timeout=600,
        )

    def test_sigkill_then_resume_reproduces_the_run(self, tmp_path):
        killed = self._loadgen(tmp_path, "--crash-at-tick", "5")
        assert killed.returncode in (-signal.SIGKILL, 128 + signal.SIGKILL)

        resumed = self._loadgen(tmp_path, "--resume", "--check")
        assert resumed.returncode == 0, resumed.stderr
        report = json.loads((tmp_path / "bench.json").read_text())
        assert report["service"]["drained"]
        assert report["pool"]["conserved"]

        # Same timeline, never interrupted, no durability.
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(__file__).resolve().parents[1] / "src")
        clean = subprocess.run(
            [
                sys.executable, "-m", "repro", "loadgen",
                "--seed", "13", "--events", "2",
                "--output", str(tmp_path / "clean.json"),
            ],
            env=env, capture_output=True, text=True, timeout=600,
        )
        assert clean.returncode == 0, clean.stderr
        clean_report = json.loads((tmp_path / "clean.json").read_text())
        assert (
            report["digests"]["combined"]
            == clean_report["digests"]["combined"]
        )
        assert (
            report["pool"]["totals"] == clean_report["pool"]["totals"]
        )
