"""Tests for the multi-event serving core: parity, isolation, backpressure."""

import asyncio

import numpy as np
import pytest

from repro.data.stream import SensingCycleStream
from repro.eval.persistence import run_outcome_digest
from repro.eval.runner import build_crowdlearn, prepare
from repro.serve import (
    CrowdLearnService,
    AsyncCrowdLearnService,
    SharedCrowdPool,
    create_admission_policy,
)


@pytest.fixture(scope="module")
def setup():
    return prepare(seed=21, fast=True)


def standalone_digest(setup, event_id):
    """What the single-tenant loop produces under the event's names."""
    system = build_crowdlearn(
        setup,
        platform_name=f"event-{event_id}",
        seed=setup.seeds.seed_for(f"event-{event_id}"),
    )
    stream = SensingCycleStream(
        setup.test_set,
        n_cycles=setup.config.n_cycles,
        images_per_cycle=setup.config.images_per_cycle,
        cycles_per_context=setup.config.cycles_per_context,
        rng=setup.seeds.get(f"stream-event-{event_id}"),
    )
    return run_outcome_digest(system.run(stream))


@pytest.fixture(scope="module")
def alpha_digest(setup):
    return standalone_digest(setup, "alpha")


@pytest.fixture(scope="module")
def bravo_digest(setup):
    return standalone_digest(setup, "bravo")


def contended_service(setup, **kwargs):
    pool = SharedCrowdPool(
        capacity_per_cycle=4,
        policy=create_admission_policy(
            kwargs.pop("policy", "fair-share")
        ),
        max_backlog=kwargs.pop("max_backlog", 3),
    )
    return CrowdLearnService(setup, pool=pool, **kwargs)


class TestSingleEventParity:
    def test_n1_served_is_byte_identical_to_standalone(
        self, setup, alpha_digest
    ):
        service = CrowdLearnService(setup)
        service.submit_event("alpha")
        service.drain()
        assert service.digests()["alpha"] == alpha_digest

    def test_n2_unmetered_events_match_their_standalone_runs(
        self, setup, alpha_digest, bravo_digest
    ):
        """Cross-event isolation: RNG streams, shared cache namespaces and
        budget ledgers never leak between co-served events."""
        service = CrowdLearnService(setup)
        service.submit_event("alpha")
        service.submit_event("bravo")
        service.drain()
        digests = service.digests()
        assert digests["alpha"] == alpha_digest
        assert digests["bravo"] == bravo_digest
        assert service.cache is not None  # the isolation ran *through* it


class TestInterleaving:
    def test_n3_contended_run_is_repeat_stable(self, setup):
        def run():
            service = contended_service(setup)
            for event_id in ("a", "b", "c"):
                service.submit_event(event_id)
            service.drain()
            return service.combined_digest(), service.pool.totals()

        (d1, t1), (d2, t2) = run(), run()
        assert d1 == d2
        assert t1 == t2
        assert t1["deferred"] + t1["shed"] > 0  # genuinely contended

    def test_ticks_round_robin_in_event_id_order(self, setup):
        service = contended_service(setup)
        for event_id in ("c", "a", "b"):  # submission order scrambled
            service.submit_event(event_id)
        order = [service.step() for _ in range(6)]
        assert order == ["a", "b", "c", "a", "b", "c"]

    def test_priority_policy_favours_hot_event(self, setup):
        pool = SharedCrowdPool(
            capacity_per_cycle=2,  # below the fleet's 4-query demand
            policy=create_admission_policy("priority"),
            max_backlog=3,
        )
        service = CrowdLearnService(setup, pool=pool)
        service.submit_event("hot", priority=5.0)
        service.submit_event("cold", priority=1.0)
        service.drain()
        pool = service.pool
        assert pool.ledger("hot").admitted > pool.ledger("cold").admitted
        assert pool.conserved()


class TestSubmission:
    def test_duplicate_event_rejected(self, setup):
        service = CrowdLearnService(setup)
        service.submit_event("dup")
        with pytest.raises(ValueError, match="already registered"):
            service.submit_event("dup")

    def test_path_unsafe_event_id_rejected(self, setup):
        service = CrowdLearnService(setup)
        for bad in ("", "a/b", "a b"):
            with pytest.raises(ValueError, match="path-safe"):
                service.submit_event(bad)

    def test_event_status_books(self, setup):
        service = CrowdLearnService(setup)
        service.submit_event("solo")
        service.drain()
        status = service.event_status("solo")
        assert status.done
        assert status.next_cycle == status.n_cycles
        assert 0.0 < status.macro_f1 <= 1.0
        assert status.pool["requested"] == status.pool["admitted"]
        budget = status.budget
        assert budget["charged_cents"] - budget["refunded_cents"] == (
            pytest.approx(budget["spent_cents"])
        )
        assert status.latency_seconds["p99"] >= status.latency_seconds["p50"]


class TestIngest:
    def test_burst_extends_stream_and_reopens_event(self, setup):
        service = CrowdLearnService(setup)
        deployment = service.submit_event("surge")
        service.drain()
        assert deployment.done
        added = service.ingest_images("surge", n_images=12, burst_seed=9)
        assert added == 3  # 12 images / 5 per cycle, ragged final cycle
        assert not deployment.done
        service.drain()
        assert deployment.next_cycle == deployment.n_cycles

    def test_burst_image_ids_never_alias_the_world(self, setup):
        service = CrowdLearnService(setup)
        deployment = service.submit_event("re-id")
        service.ingest_images("re-id", n_images=7, burst_seed=3)
        service.ingest_images("re-id", n_images=7, burst_seed=3)
        ids = [img.metadata.image_id for img in deployment.stream._images]
        assert len(ids) == len(set(ids))  # two identical bursts, no clash

    def test_generated_burst_requires_seed(self, setup):
        service = CrowdLearnService(setup)
        service.submit_event("strict")
        with pytest.raises(ValueError, match="burst_seed"):
            service.ingest_images("strict", n_images=5)


class TestTelemetryIsolation:
    def test_two_deployments_have_disjoint_counter_sets(self, setup):
        """Satellite regression: per-event pipelines must not share the
        process-global default (the old singleton bug)."""
        service = contended_service(setup, instrument=True)
        service.submit_event("x")
        service.submit_event("y")
        service.drain()
        keys = {}
        for event_id in ("x", "y"):
            telemetry = service.telemetries[event_id]
            instruments = list(telemetry.registry)
            assert instruments, f"event {event_id} recorded no metrics"
            for instrument in instruments:
                assert ("event", event_id) in instrument.labels
            keys[event_id] = {
                (i.name, i.labels) for i in instruments
            }
        assert keys["x"].isdisjoint(keys["y"])


class TestCacheNamespacing:
    def test_events_share_physical_stores_but_not_keys(self, setup):
        service = CrowdLearnService(setup)
        service.submit_event("one")
        service.submit_event("two")
        sys_one = service.registry.get("one").system
        sys_two = service.registry.get("two").system
        assert sys_one.cache is not sys_two.cache
        assert sys_one.cache.predictions is sys_two.cache.predictions
        service.drain()
        namespaces = {
            key[0] for key in service.cache.predictions.keys()
        }
        assert namespaces == {"one", "two"}


class TestAsyncFacade:
    def test_async_drive_matches_sync_digests(self, setup):
        sync = contended_service(setup)
        sync.submit_event("a")
        sync.submit_event("b")
        sync.drain()

        async def drive():
            service = AsyncCrowdLearnService(contended_service(setup))
            await service.submit_event("a")
            await service.submit_event("b")
            outcome = await service.drain()
            status = await service.event_status("a")
            assert status.done
            return outcome, await service.combined_digest()

        outcome, digest = asyncio.run(drive())
        assert outcome.ticks == sync.ticks
        assert outcome.clean
        assert set(outcome.drained) == {"a", "b"}
        assert digest == sync.combined_digest()

    def test_status_interleaves_with_drain(self, setup):
        async def drive():
            service = AsyncCrowdLearnService(contended_service(setup))
            await service.submit_event("a")
            await service.submit_event("b")
            drain_task = asyncio.create_task(service.drain())
            statuses = []
            while not drain_task.done():
                statuses.append(await service.event_status("a"))
                await asyncio.sleep(0)
            await drain_task
            return statuses

        statuses = asyncio.run(drive())
        # Mid-drain observations saw the event part-way through.
        assert any(0 < s.next_cycle < s.n_cycles for s in statuses)


class TestLoadgen:
    def test_report_passes_its_own_gates(self, setup):
        from repro.serve import loadgen

        service = loadgen.build_service(setup, n_events=2, max_backlog=2)
        loadgen.drive(service, burst_images=6, burst_seed=2)
        report = loadgen.build_report(service, 1.0, {
            "bench": "serve-loadgen", "n_events": 2,
            "capacity_per_cycle": service.pool.capacity_per_cycle,
            "policy": "fair-share",
        })
        assert loadgen.check_report(report) == []
        assert report["service"]["drained"]
        assert report["pool"]["contended"]
        assert set(report["digests"]["per_event"]) == {
            "event-01", "event-02",
        }
        assert "serve loadgen" in loadgen.render_report(report)

    def test_check_report_catches_violations(self, setup):
        import copy

        from repro.serve import loadgen

        service = loadgen.build_service(setup, n_events=2)
        loadgen.drive(service, burst_images=0)
        report = loadgen.build_report(service, 1.0, {"n_events": 2})
        doctored = copy.deepcopy(report)
        doctored["pool"]["conserved"] = False
        doctored["service"]["drained"] = False
        doctored["pool"]["contended"] = False
        doctored["budget_cents"]["conserved"] = False
        failures = loadgen.check_report(doctored, p99_gate_seconds=0.0)
        assert len(failures) >= 4
        messages = "\n".join(failures)
        assert "conservation" in messages
        assert "drain" in messages
        assert "contention" in messages
        assert "p99" in messages
