"""Unit tests for the virtual-time scheduler layer.

Covers :mod:`repro.crowd.scheduler` itself (event ordering, harvest,
expiry, snapshots), the clock's forwards-only ``advance_to``, the delay
model's analytic lateness tail, and the platform-level straggler paths:
late responses becoming pending events, harvest recording (deduped)
history, and batch posting that survives mid-batch faults.
"""

import numpy as np
import pytest

from repro.crowd.delay import DelayModel
from repro.crowd.platform import BatchPostResult, CrowdsourcingPlatform
from repro.crowd.quality import QualityModel
from repro.crowd.scheduler import PendingResponse, VirtualTimeScheduler
from repro.crowd.tasks import (
    CrowdQuery,
    QuestionnaireAnswers,
    WorkerResponse,
)
from repro.data.metadata import (
    DamageLabel,
    FailureArchetype,
    ImageMetadata,
    SceneType,
)
from repro.utils.clock import SECONDS_PER_CYCLE, SimulatedClock, TemporalContext


def meta(image_id=0):
    return ImageMetadata(
        image_id=image_id,
        true_label=DamageLabel.SEVERE,
        archetype=FailureArchetype.NONE,
        scene=SceneType.BUILDING,
        is_fake=False,
        people_in_danger=False,
        apparent_label=DamageLabel.SEVERE,
    )


def query(query_id=0):
    return CrowdQuery(
        query_id=query_id,
        image_id=query_id,
        incentive_cents=8.0,
        context=TemporalContext.MORNING,
    )


def response(worker_id=0, delay=700.0):
    return WorkerResponse(
        worker_id=worker_id,
        label=DamageLabel.SEVERE,
        questionnaire=QuestionnaireAnswers(
            says_fake=False,
            scene=SceneType.BUILDING,
            says_people_in_danger=False,
        ),
        delay_seconds=delay,
    )


class TestClockAdvanceTo:
    def test_advances_forwards(self):
        clock = SimulatedClock()
        assert clock.advance_to(100.0) == 100.0
        assert clock.elapsed_seconds == 100.0

    def test_never_goes_backwards(self):
        clock = SimulatedClock()
        clock.advance(500.0)
        assert clock.advance_to(100.0) == 500.0
        assert clock.elapsed_seconds == 500.0

    def test_noop_at_exact_target(self):
        clock = SimulatedClock()
        clock.advance(300.0)
        assert clock.advance_to(300.0) == 300.0


class TestSchedulerBasics:
    def test_defaults(self):
        sched = VirtualTimeScheduler()
        assert sched.now == 0.0
        assert sched.cycle_seconds == SECONDS_PER_CYCLE
        assert sched.pending_count == 0
        assert sched.next_arrival is None

    def test_validation(self):
        with pytest.raises(ValueError):
            VirtualTimeScheduler(cycle_seconds=0.0)
        with pytest.raises(ValueError):
            VirtualTimeScheduler(max_straggler_age_seconds=-1.0)
        with pytest.raises(ValueError):
            VirtualTimeScheduler().cycle_start(-1)

    def test_cycle_start(self):
        sched = VirtualTimeScheduler(cycle_seconds=600.0)
        assert sched.cycle_start(0) == 0.0
        assert sched.cycle_start(3) == 1800.0

    def test_schedule_and_collect_in_arrival_order(self):
        sched = VirtualTimeScheduler()
        assert sched.schedule(query(0), response(0, delay=900.0))
        assert sched.schedule(query(1), response(1, delay=650.0))
        assert sched.pending_count == 2
        assert sched.next_arrival == 650.0
        due = sched.collect_due(now=1000.0)
        assert [e.arrival_time for e in due] == [650.0, 900.0]
        assert sched.pending_count == 0

    def test_collect_due_respects_virtual_time(self):
        sched = VirtualTimeScheduler()
        sched.schedule(query(0), response(0, delay=700.0))
        assert sched.collect_due() == []  # clock still at 0
        sched.advance_to(600.0)
        assert sched.collect_due() == []  # arrives at 700
        sched.advance_to(1200.0)
        assert len(sched.collect_due()) == 1

    def test_ties_break_by_schedule_order(self):
        sched = VirtualTimeScheduler()
        sched.schedule(query(0), response(0, delay=700.0))
        sched.schedule(query(1), response(1, delay=700.0))
        due = sched.collect_due(now=700.0)
        assert [e.query.query_id for e in due] == [0, 1]

    def test_arrival_relative_to_posting_time(self):
        sched = VirtualTimeScheduler()
        sched.advance(600.0)
        sched.schedule(query(0), response(0, delay=100.0))
        event = sched.collect_due(now=700.0)[0]
        assert event.arrival_time == 700.0
        assert event.posted_at == 600.0
        assert event.age_seconds == 100.0

    def test_has_pending_per_query(self):
        sched = VirtualTimeScheduler()
        sched.schedule(query(7), response(0, delay=700.0))
        sched.schedule(query(7), response(1, delay=800.0))
        assert sched.has_pending(7)
        assert not sched.has_pending(8)
        sched.collect_due(now=750.0)
        assert sched.has_pending(7)  # one response still in flight
        sched.collect_due(now=900.0)
        assert not sched.has_pending(7)

    def test_max_age_expires_at_schedule_time(self):
        sched = VirtualTimeScheduler(max_straggler_age_seconds=1000.0)
        assert not sched.schedule(query(0), response(0, delay=1500.0))
        assert sched.schedule(query(1), response(1, delay=900.0))
        assert sched.pending_count == 1
        assert sched.expired_total == 1

    def test_snapshot_is_json_safe(self):
        import json

        sched = VirtualTimeScheduler()
        sched.schedule(query(0), response(0, delay=700.0))
        snap = sched.snapshot()
        json.dumps(snap)  # must not raise
        assert snap["pending_events"] == 1
        assert snap["next_arrival_seconds"] == 700.0

    def test_pending_response_ordering(self):
        a = PendingResponse(10.0, 0, query(0), response(0))
        b = PendingResponse(10.0, 1, query(1), response(1))
        c = PendingResponse(5.0, 2, query(2), response(2))
        assert sorted([b, a, c]) == [c, a, b]


class TestDelayTail:
    def test_late_probability_monotone_in_deadline(self):
        model = DelayModel()
        p_tight = model.late_probability(TemporalContext.MORNING, 1.0, 300.0)
        p_loose = model.late_probability(TemporalContext.MORNING, 1.0, 3000.0)
        assert p_tight > p_loose

    def test_late_probability_matches_figure5_shape(self):
        """Slow morning 1c crowds straggle; paid morning crowds do not."""
        model = DelayModel()
        slow = model.late_probability(
            TemporalContext.MORNING, 1.0, SECONDS_PER_CYCLE
        )
        fast = model.late_probability(
            TemporalContext.MORNING, 20.0, SECONDS_PER_CYCLE
        )
        assert slow > 0.9
        assert fast < 0.05

    def test_late_probability_agrees_with_sampling(self):
        model = DelayModel()
        rng = np.random.default_rng(3)
        deadline = 600.0
        draws = np.array([
            model.sample(TemporalContext.MIDNIGHT, 1.0, rng)
            for _ in range(4000)
        ])
        analytic = model.late_probability(
            TemporalContext.MIDNIGHT, 1.0, deadline
        )
        empirical = float(np.mean(draws > deadline))
        assert abs(analytic - empirical) < 0.03

    def test_zero_sigma_degenerates_to_step(self):
        model = DelayModel(noise_sigma=0.0)
        mean = model.mean_delay(TemporalContext.MORNING, 1.0)
        assert model.late_probability(
            TemporalContext.MORNING, 1.0, mean / 2
        ) == 1.0
        assert model.late_probability(
            TemporalContext.MORNING, 1.0, mean * 2
        ) == 0.0

    def test_validation(self):
        model = DelayModel()
        with pytest.raises(ValueError):
            model.late_probability(TemporalContext.MORNING, 1.0, 0.0)
        with pytest.raises(ValueError):
            model.late_probability(
                TemporalContext.MORNING, 1.0, 600.0, worker_speed=0.0
            )


def make_platform(population, rng=None, scheduler=None):
    return CrowdsourcingPlatform(
        population=population,
        delay_model=DelayModel(),
        quality_model=QualityModel(),
        rng=rng if rng is not None else np.random.default_rng(12345),
        workers_per_query=5,
        scheduler=scheduler,
    )


class TestPlatformScheduling:
    def test_late_responses_become_pending_events(self, population):
        sched = VirtualTimeScheduler()
        platform = make_platform(population, scheduler=sched)
        total_late = 0
        for i in range(10):
            result = platform.post_query(
                meta(i), 1.0, TemporalContext.MORNING, deadline_seconds=300.0
            )
            total_late += result.n_late
        assert total_late > 0  # 1c morning crowd is slow (mean ~1150s)
        assert sched.pending_count == total_late

    def test_result_records_late_count_and_deadline(self, population):
        platform = make_platform(population)
        result = platform.post_query(
            meta(), 1.0, TemporalContext.MORNING, deadline_seconds=300.0
        )
        assert result.deadline_seconds == 300.0
        assert result.n_late == 5 - len(result.responses)

    def test_no_scheduler_drops_late_as_before(self, population):
        platform = make_platform(population)
        result = platform.post_query(
            meta(), 1.0, TemporalContext.MORNING, deadline_seconds=300.0
        )
        assert result.n_late > 0
        assert platform.collect_stragglers() == []

    def test_harvest_records_history_once(self, population):
        sched = VirtualTimeScheduler()
        platform = make_platform(population, scheduler=sched)
        result = platform.post_query(
            meta(), 1.0, TemporalContext.MORNING, deadline_seconds=300.0
        )
        on_time = len(result.responses)
        assert result.n_late > 0
        sched.advance_to(10 * SECONDS_PER_CYCLE)
        harvested = platform.collect_stragglers()
        assert len(harvested) == result.n_late
        assert len(platform.history) == on_time + result.n_late
        # harvesting again returns nothing and appends nothing
        assert platform.collect_stragglers() == []
        assert len(platform.history) == on_time + result.n_late

    def test_harvested_stragglers_gradeable(self, population):
        sched = VirtualTimeScheduler()
        platform = make_platform(population, scheduler=sched)
        result = platform.post_query(
            meta(), 1.0, TemporalContext.MORNING, deadline_seconds=300.0
        )
        sched.advance_to(10 * SECONDS_PER_CYCLE)
        harvested = platform.collect_stragglers()
        platform.reveal_ground_truth(
            result.query.query_id, int(DamageLabel.SEVERE)
        )
        for event in harvested:
            graded, _ = platform.worker_track_record(
                event.response.worker_id
            )
            assert graded >= 1

    def test_realized_mean_delay_charges_deadline_for_late(self):
        result_query = query()
        from repro.crowd.tasks import QueryResult

        result = QueryResult(
            query=result_query,
            responses=[response(0, delay=100.0)],
            n_late=1,
            deadline_seconds=600.0,
        )
        assert result.realized_mean_delay() == pytest.approx((100.0 + 600.0) / 2)
        assert result.mean_delay == pytest.approx(100.0)

    def test_realized_equals_mean_without_deadline(self):
        from repro.crowd.tasks import QueryResult

        result = QueryResult(query=query(), responses=[response(0, 100.0)])
        assert result.realized_mean_delay() == result.mean_delay


class TestBatchPosting:
    def test_batch_forwards_deadline(self, population):
        platform = make_platform(population)
        batch = platform.post_queries(
            [meta(i) for i in range(3)],
            1.0,
            TemporalContext.MORNING,
            deadline_seconds=300.0,
        )
        assert batch.ok
        assert len(batch) == 3
        for result in batch:
            assert result.deadline_seconds == 300.0

    def test_batch_keeps_partial_results_on_budget_exhausted(self, population):
        from repro.bandit.budget import BudgetExhausted, BudgetLedger

        platform = make_platform(population)
        ledger = BudgetLedger(total=20.0)  # 2 posts of 8c, not 3
        batch = platform.post_queries(
            [meta(i) for i in range(3)],
            8.0,
            TemporalContext.EVENING,
            ledger=ledger,
        )
        assert not batch.ok
        assert isinstance(batch.error, BudgetExhausted)
        assert len(batch) == 2  # the completed work survives

    def test_batch_keeps_partial_results_on_outage(self, population):
        from repro.crowd.faults import (
            FaultInjector,
            FaultPlan,
            PlatformUnavailable,
        )

        injector = FaultInjector(
            FaultPlan(outage_windows=((2, 100),)),
            rng=np.random.default_rng(0),
        )
        platform = make_platform(population)
        platform.faults = injector
        batch = platform.post_queries(
            [meta(i) for i in range(5)], 8.0, TemporalContext.EVENING
        )
        assert not batch.ok
        assert isinstance(batch.error, PlatformUnavailable)
        assert len(batch) == 2  # posts 0 and 1 landed before the outage

    def test_batch_result_is_sequence_like(self):
        batch = BatchPostResult()
        assert batch.ok
        assert len(batch) == 0
        assert list(batch) == []
