"""Tests for RunOutcome's learning traces."""

import numpy as np

from repro.core.system import CycleOutcome, RunOutcome
from repro.utils.clock import TemporalContext


def make_cycle(index, correct, total, cost=10.0, weights=(0.5, 0.5)):
    true_labels = np.zeros(total, dtype=np.int64)
    final_labels = np.zeros(total, dtype=np.int64)
    final_labels[correct:] = 1  # the rest are wrong
    return CycleOutcome(
        cycle_index=index,
        context=TemporalContext.MORNING,
        true_labels=true_labels,
        final_labels=final_labels,
        final_scores=np.full((total, 3), 1 / 3),
        query_indices=np.arange(min(2, total)),
        incentives_cents=np.array([4.0, 4.0]),
        crowd_delay=100.0,
        cost_cents=cost,
        expert_weights=np.array(weights),
    )


class TestTraces:
    def test_accuracy_trace(self):
        outcome = RunOutcome(
            cycles=[make_cycle(0, 5, 10), make_cycle(1, 8, 10)]
        )
        np.testing.assert_allclose(outcome.accuracy_trace(), [0.5, 0.8])

    def test_weight_trace_shape(self):
        outcome = RunOutcome(
            cycles=[
                make_cycle(0, 5, 10, weights=(0.5, 0.5)),
                make_cycle(1, 5, 10, weights=(0.7, 0.3)),
            ]
        )
        trace = outcome.weight_trace()
        assert trace.shape == (2, 2)
        np.testing.assert_allclose(trace[1], [0.7, 0.3])

    def test_spend_trace_cumulative(self):
        outcome = RunOutcome(
            cycles=[make_cycle(0, 5, 10, cost=10.0), make_cycle(1, 5, 10, cost=6.0)]
        )
        np.testing.assert_allclose(outcome.spend_trace(), [10.0, 16.0])

    def test_empty_outcome(self):
        outcome = RunOutcome()
        assert outcome.accuracy_trace().size == 0
        assert outcome.weight_trace().shape == (0, 0)
        assert outcome.spend_trace().size == 0


class TestSystemLearning:
    def test_crowdlearn_trace_available_end_to_end(self):
        from repro.eval.runner import build_crowdlearn, prepare

        setup = prepare(seed=37, fast=True)
        system = build_crowdlearn(setup)
        outcome = system.run(setup.make_stream("traces"))
        trace = outcome.accuracy_trace()
        assert trace.shape == (setup.config.n_cycles,)
        assert np.all((0.0 <= trace) & (trace <= 1.0))
        weights = outcome.weight_trace()
        assert weights.shape == (setup.config.n_cycles, 3)
        np.testing.assert_allclose(weights.sum(axis=1), 1.0)
        spend = outcome.spend_trace()
        assert np.all(np.diff(spend) >= 0)
