"""Tests for repro.eval.delay_model."""

import pytest

from repro.eval.delay_model import AlgorithmDelayModel


@pytest.fixture
def model():
    return AlgorithmDelayModel()


class TestAlgorithmDelayModel:
    def test_expert_costs_anchor_to_paper(self, model):
        assert model.expert_cost("VGG16") == pytest.approx(47.83)
        assert model.expert_cost("BoVW") == pytest.approx(37.55)
        assert model.expert_cost("DDM") == pytest.approx(52.57)

    def test_table3_ordering_preserved(self, model):
        """The paper's Table III ordering must hold."""
        costs = {
            name: model.scheme_cost(name)
            for name in (
                "BoVW", "VGG16", "DDM", "CrowdLearn", "Ensemble", "Hybrid-Para",
                "Hybrid-AL",
            )
        }
        assert costs["BoVW"] < costs["VGG16"] < costs["DDM"]
        assert costs["DDM"] < costs["CrowdLearn"] < costs["Ensemble"]
        assert costs["Ensemble"] < costs["Hybrid-Para"]
        assert costs["VGG16"] < costs["Hybrid-AL"] < costs["CrowdLearn"] + 10

    def test_crowdlearn_runs_committee_concurrently(self, model):
        assert model.crowdlearn_cost() < sum(model.expert_costs.values())
        assert model.crowdlearn_cost() > max(model.expert_costs.values())

    def test_hybrid_al_is_expert_plus_retraining(self, model):
        assert model.hybrid_al_cost() > model.expert_cost("VGG16")

    def test_custom_costs(self):
        model = AlgorithmDelayModel({"A": 1.0, "B": 2.0})
        assert model.ensemble_cost() == pytest.approx(3.0 * 0.6 + 2.0)

    def test_unknown_names_raise(self, model):
        with pytest.raises(KeyError):
            model.expert_cost("nope")
        with pytest.raises(KeyError):
            model.scheme_cost("nope")

    def test_invalid_costs_raise(self):
        with pytest.raises(ValueError):
            AlgorithmDelayModel({"A": 0.0})
