"""Tests for the serving layer's admission policies."""

import pytest

from repro.serve.admission import (
    POLICIES,
    AdmissionRequest,
    DeadlineAwarePolicy,
    FairSharePolicy,
    PriorityPolicy,
    create_admission_policy,
)


def req(event_id, demand, priority=1.0, cycles_remaining=1):
    return AdmissionRequest(
        event_id=event_id,
        demand=demand,
        priority=priority,
        cycles_remaining=cycles_remaining,
    )


class TestAdmissionRequest:
    def test_rejects_negative_demand(self):
        with pytest.raises(ValueError, match="demand"):
            req("a", -1)

    def test_rejects_nonpositive_priority(self):
        with pytest.raises(ValueError, match="priority"):
            req("a", 1, priority=0.0)


class TestFairShare:
    def test_equal_split(self):
        quotas = FairSharePolicy().allocate(
            6, [req("a", 4), req("b", 4), req("c", 4)]
        )
        assert quotas == {"a": 2, "b": 2, "c": 2}

    def test_small_demand_fully_served_before_levelling(self):
        quotas = FairSharePolicy().allocate(
            10, [req("a", 1), req("b", 100), req("c", 100)]
        )
        assert quotas["a"] == 1
        # The freed slot is re-levelled across the hungry pair.
        assert quotas["b"] + quotas["c"] == 9
        assert abs(quotas["b"] - quotas["c"]) <= 1

    def test_overprovisioned_grants_all_demand(self):
        quotas = FairSharePolicy().allocate(100, [req("a", 3), req("b", 5)])
        assert quotas == {"a": 3, "b": 5}

    def test_zero_capacity(self):
        assert FairSharePolicy().allocate(0, [req("a", 3)]) == {"a": 0}

    def test_fewer_slots_than_events_go_in_id_order(self):
        quotas = FairSharePolicy().allocate(
            2, [req("c", 5), req("a", 5), req("b", 5)]
        )
        assert quotas == {"a": 1, "b": 1, "c": 0}

    def test_order_independent(self):
        requests = [req("b", 7), req("a", 2), req("c", 9)]
        forward = FairSharePolicy().allocate(10, requests)
        backward = FairSharePolicy().allocate(10, list(reversed(requests)))
        assert forward == backward

    def test_zero_demand_gets_zero(self):
        quotas = FairSharePolicy().allocate(5, [req("a", 0), req("b", 9)])
        assert quotas == {"a": 0, "b": 5}


class TestPriority:
    def test_proportional_to_priority(self):
        quotas = PriorityPolicy().allocate(
            9, [req("a", 10, priority=2.0), req("b", 10, priority=1.0)]
        )
        assert quotas == {"a": 6, "b": 3}

    def test_demand_cap_redistributes(self):
        quotas = PriorityPolicy().allocate(
            9, [req("a", 2, priority=2.0), req("b", 10, priority=1.0)]
        )
        assert quotas == {"a": 2, "b": 7}

    def test_never_exceeds_capacity_or_demand(self):
        quotas = PriorityPolicy().allocate(
            7,
            [req("a", 3, priority=5.0), req("b", 2), req("c", 4)],
        )
        assert sum(quotas.values()) <= 7
        assert quotas["a"] <= 3 and quotas["b"] <= 2 and quotas["c"] <= 4


class TestDeadlineAware:
    def test_urgent_event_beats_relaxed_one(self):
        quotas = DeadlineAwarePolicy().allocate(
            6,
            [
                req("ending", 6, cycles_remaining=1),
                req("fresh", 6, cycles_remaining=6),
            ],
        )
        assert quotas["ending"] > quotas["fresh"]

    def test_priority_scales_urgency(self):
        quotas = DeadlineAwarePolicy().allocate(
            6,
            [
                req("hot", 6, priority=3.0, cycles_remaining=3),
                req("cold", 6, priority=1.0, cycles_remaining=3),
            ],
        )
        assert quotas["hot"] > quotas["cold"]


class TestRegistry:
    def test_three_policies_registered(self):
        assert set(POLICIES) == {"fair-share", "priority", "deadline"}

    def test_create_by_name(self):
        for name, cls in POLICIES.items():
            assert isinstance(create_admission_policy(name), cls)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown admission policy"):
            create_admission_policy("round-robin")

    def test_duplicate_event_ids_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            FairSharePolicy().allocate(4, [req("a", 1), req("a", 2)])

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            FairSharePolicy().allocate(-1, [req("a", 1)])
