"""Shared fixtures for the test suite.

Expensive artifacts (datasets, trained models, the fast experiment setup)
are session-scoped; tests must not mutate them.  Tests that need mutation
build their own tiny instances.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.crowd.delay import DelayModel
from repro.crowd.platform import CrowdsourcingPlatform
from repro.crowd.population import WorkerPopulation
from repro.crowd.quality import QualityModel
from repro.data.dataset import DisasterDataset, build_dataset, train_test_split


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def small_dataset() -> DisasterDataset:
    """A 90-image dataset with archetypes (shared, read-only)."""
    return build_dataset(n_images=90, rng=np.random.default_rng(7))


@pytest.fixture(scope="session")
def small_split(small_dataset) -> tuple[DisasterDataset, DisasterDataset]:
    """(train, test) split of the shared small dataset."""
    return train_test_split(small_dataset, n_train=60, rng=np.random.default_rng(8))


@pytest.fixture(scope="session")
def population() -> WorkerPopulation:
    """A 40-worker population (shared, read-only)."""
    return WorkerPopulation(n_workers=40, rng=np.random.default_rng(9))


@pytest.fixture
def platform(population, rng) -> CrowdsourcingPlatform:
    """A fresh platform per test over the shared population."""
    return CrowdsourcingPlatform(
        population=population,
        delay_model=DelayModel(),
        quality_model=QualityModel(),
        rng=rng,
        workers_per_query=5,
    )
