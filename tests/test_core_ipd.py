"""Tests for repro.core.ipd."""

import numpy as np
import pytest

from repro.bandit.budget import BudgetLedger
from repro.bandit.policies import FixedIncentivePolicy
from repro.core.ipd import IncentivePolicyDesigner
from repro.crowd.delay import INCENTIVE_LEVELS
from repro.utils.clock import TemporalContext


def make_ipd(budget=1000.0, total_queries=100, policy=None, **kwargs):
    return IncentivePolicyDesigner(
        arms=INCENTIVE_LEVELS,
        ledger=BudgetLedger(budget),
        total_queries=total_queries,
        policy=policy,
        **kwargs,
    )


class TestDelayToPayoff:
    def test_inverse_relation(self):
        fast = IncentivePolicyDesigner.delay_to_payoff(60.0)
        slow = IncentivePolicyDesigner.delay_to_payoff(600.0)
        assert fast > slow

    def test_normalization(self):
        assert IncentivePolicyDesigner.delay_to_payoff(600.0) == pytest.approx(-1.0)

    def test_negative_delay_raises(self):
        with pytest.raises(ValueError):
            IncentivePolicyDesigner.delay_to_payoff(-1.0)


class TestBudgetPacing:
    def test_initial_budget_per_query(self):
        ipd = make_ipd(budget=1000.0, total_queries=100)
        assert ipd.budget_per_query() == pytest.approx(10.0)

    def test_pacing_tracks_spending(self):
        ipd = make_ipd(budget=1000.0, total_queries=100)
        ipd.ledger.charge(500.0)
        for _ in range(50):
            ipd.price_query(TemporalContext.MORNING)
        assert ipd.budget_per_query() == pytest.approx(10.0)

    def test_pacing_never_divides_by_zero(self):
        ipd = make_ipd(budget=10.0, total_queries=2)
        for _ in range(5):
            ipd.price_query(TemporalContext.EVENING)
        assert np.isfinite(ipd.budget_per_query())


class TestPriceQuery:
    def test_returns_arm_and_incentive(self):
        ipd = make_ipd(policy=FixedIncentivePolicy(4, INCENTIVE_LEVELS, arm=2))
        arm, incentive = ipd.price_query(TemporalContext.MORNING)
        assert arm == 2
        assert incentive == INCENTIVE_LEVELS[2]

    def test_remaining_context_distribution_shrinks(self):
        counts = {c: 10 for c in TemporalContext.ordered()}
        ipd = make_ipd(total_queries=40, queries_per_context=counts)
        for _ in range(10):
            ipd.price_query(TemporalContext.MORNING)
        dist = ipd.remaining_context_distribution()
        assert dist[TemporalContext.MORNING.index] == pytest.approx(0.0)
        assert dist.sum() == pytest.approx(1.0)

    def test_distribution_uniform_when_exhausted(self):
        counts = {c: 1 for c in TemporalContext.ordered()}
        ipd = make_ipd(total_queries=4, queries_per_context=counts)
        for context in TemporalContext.ordered():
            ipd.price_query(context)
        np.testing.assert_allclose(ipd.remaining_context_distribution(), 0.25)


class TestObserve:
    def test_observe_feeds_policy(self):
        ipd = make_ipd()
        ipd.observe(TemporalContext.MORNING, 0, 300.0)
        stats = ipd.policy.stats[TemporalContext.MORNING.index][0]
        assert stats.pulls == 1
        assert stats.mean_payoff == pytest.approx(-0.5)


class TestWarmStart:
    def test_warm_start_seeds_all_cells(self, population, rng):
        from repro.crowd.delay import DelayModel
        from repro.crowd.pilot import run_pilot_study
        from repro.crowd.platform import CrowdsourcingPlatform
        from repro.crowd.quality import QualityModel
        from repro.data.dataset import build_dataset

        platform = CrowdsourcingPlatform(
            population=population,
            delay_model=DelayModel(),
            quality_model=QualityModel(),
            rng=rng,
            workers_per_query=3,
        )
        train = build_dataset(n_images=30, rng=rng)
        pilot = run_pilot_study(
            platform, train, rng, incentive_levels=INCENTIVE_LEVELS,
            queries_per_cell=3,
        )
        ipd = make_ipd()
        ipd.warm_start(pilot)
        for context in TemporalContext.ordered():
            assert ipd.policy.pull_counts(context.index).min() >= 3

    def test_schedule_reports_greedy_arms(self):
        ipd = make_ipd()
        # Make 4c clearly best in the morning.
        for _ in range(5):
            for arm, level in enumerate(INCENTIVE_LEVELS):
                delay = 100.0 if level == 4.0 else 500.0
                ipd.observe(TemporalContext.MORNING, arm, delay)
        schedule = ipd.incentive_schedule()
        assert schedule[TemporalContext.MORNING] == 4.0
        assert np.isnan(schedule[TemporalContext.EVENING])


class TestValidation:
    def test_invalid_total_queries(self):
        with pytest.raises(ValueError):
            make_ipd(total_queries=0)

    def test_policy_arm_mismatch_raises(self):
        policy = FixedIncentivePolicy(4, (1.0, 2.0))
        with pytest.raises(ValueError):
            make_ipd(policy=policy)
