"""Tests for repro.crowd.platform."""

import numpy as np
import pytest

from repro.bandit.budget import BudgetExhausted, BudgetLedger
from repro.data.metadata import (
    DamageLabel,
    FailureArchetype,
    ImageMetadata,
    SceneType,
)
from repro.utils.clock import TemporalContext


def meta(image_id=0, label=DamageLabel.SEVERE):
    return ImageMetadata(
        image_id=image_id,
        true_label=label,
        archetype=FailureArchetype.NONE,
        scene=SceneType.BUILDING,
        is_fake=False,
        people_in_danger=False,
        apparent_label=label,
    )


class TestPostQuery:
    def test_returns_requested_responses(self, platform):
        result = platform.post_query(meta(), 8.0, TemporalContext.EVENING)
        assert len(result.responses) == 5
        assert result.query.incentive_cents == 8.0

    def test_query_ids_increment(self, platform):
        a = platform.post_query(meta(), 4.0, TemporalContext.MORNING)
        b = platform.post_query(meta(), 4.0, TemporalContext.MORNING)
        assert b.query.query_id == a.query.query_id + 1
        assert platform.n_queries_posted == 2

    def test_distinct_workers_per_query(self, platform):
        result = platform.post_query(meta(), 4.0, TemporalContext.MORNING)
        ids = result.worker_ids()
        assert len(set(ids)) == len(ids)

    def test_delays_positive(self, platform):
        result = platform.post_query(meta(), 4.0, TemporalContext.MIDNIGHT)
        assert all(r.delay_seconds > 0 for r in result.responses)

    def test_charges_ledger(self, platform):
        ledger = BudgetLedger(10.0)
        platform.post_query(meta(), 4.0, TemporalContext.MORNING, ledger=ledger)
        assert ledger.spent == pytest.approx(4.0)

    def test_budget_exhaustion_propagates(self, platform):
        ledger = BudgetLedger(3.0)
        with pytest.raises(BudgetExhausted):
            platform.post_query(meta(), 4.0, TemporalContext.MORNING, ledger=ledger)

    def test_post_queries_batch(self, platform):
        ledger = BudgetLedger(100.0)
        results = platform.post_queries(
            [meta(0), meta(1), meta(2)], 2.0, TemporalContext.EVENING, ledger
        )
        assert len(results) == 3
        assert ledger.spent == pytest.approx(6.0)

    def test_higher_incentive_faster_in_morning(self, platform):
        cheap = [
            platform.post_query(meta(), 1.0, TemporalContext.MORNING).mean_delay
            for _ in range(30)
        ]
        rich = [
            platform.post_query(meta(), 20.0, TemporalContext.MORNING).mean_delay
            for _ in range(30)
        ]
        assert np.mean(rich) < np.mean(cheap)

    def test_crowd_roughly_eighty_percent_accurate(self, platform):
        """The pilot's headline observation (§IV-C)."""
        correct = 0
        total = 0
        for i in range(60):
            result = platform.post_query(meta(i), 8.0, TemporalContext.EVENING)
            for response in result.responses:
                correct += int(response.label == DamageLabel.SEVERE)
                total += 1
        assert 0.7 < correct / total < 0.95


class TestHistory:
    def test_history_grows(self, platform):
        platform.post_query(meta(), 4.0, TemporalContext.MORNING)
        assert len(platform.history) == 5

    def test_reveal_ground_truth_grades(self, platform):
        result = platform.post_query(meta(), 4.0, TemporalContext.MORNING)
        platform.reveal_ground_truth(result.query.query_id, int(DamageLabel.SEVERE))
        graded_total = 0
        for response in result.responses:
            graded, correct = platform.worker_track_record(response.worker_id)
            graded_total += graded
            assert correct <= graded
        assert graded_total >= 5

    def test_ungraded_track_record_empty(self, platform):
        platform.post_query(meta(), 4.0, TemporalContext.MORNING)
        worker_id = platform.history[0].worker_id
        graded, correct = platform.worker_track_record(worker_id)
        assert (graded, correct) == (0, 0)

    def test_invalid_workers_per_query(self, population, rng):
        from repro.crowd.delay import DelayModel
        from repro.crowd.platform import CrowdsourcingPlatform
        from repro.crowd.quality import QualityModel

        with pytest.raises(ValueError):
            CrowdsourcingPlatform(
                population=population,
                delay_model=DelayModel(),
                quality_model=QualityModel(),
                rng=rng,
                workers_per_query=0,
            )


class TestHistoryIndex:
    """Regression tests for the query-id history index behind O(1) grading."""

    def test_index_consistent_with_history(self, platform):
        results = [
            platform.post_query(meta(i), 4.0, TemporalContext.EVENING)
            for i in range(12)
        ]
        index = platform._history_by_query
        # Every history position appears exactly once, under its query id.
        all_positions = sorted(pos for rows in index.values() for pos in rows)
        assert all_positions == list(range(len(platform.history)))
        for result in results:
            qid = result.query.query_id
            assert [platform.history[i].query_id for i in index[qid]] == (
                [qid] * len(result.responses)
            )

    def test_grading_matches_full_scan(self, platform):
        """Indexed reveal must agree with a brute-force history scan."""
        results = [
            platform.post_query(meta(i), 4.0, TemporalContext.EVENING)
            for i in range(10)
        ]
        for result in results[::2]:  # grade every other query
            platform.reveal_ground_truth(
                result.query.query_id, int(DamageLabel.SEVERE)
            )
        worker_ids = {e.worker_id for e in platform.history}
        for worker_id in worker_ids:
            graded = [
                e for e in platform.history
                if e.worker_id == worker_id and e.correct is not None
            ]
            expected = (len(graded), sum(1 for e in graded if e.correct))
            assert platform.worker_track_record(worker_id) == expected

    def test_reveal_unknown_query_is_harmless(self, platform):
        platform.post_query(meta(), 4.0, TemporalContext.EVENING)
        before = list(platform.history)
        platform.reveal_ground_truth(99999, int(DamageLabel.SEVERE))
        assert platform.history == before

    def test_reveal_only_touches_its_query(self, platform):
        a = platform.post_query(meta(0), 4.0, TemporalContext.EVENING)
        platform.post_query(meta(1), 4.0, TemporalContext.EVENING)
        platform.reveal_ground_truth(a.query.query_id, int(DamageLabel.SEVERE))
        for entry in platform.history:
            if entry.query_id == a.query.query_id:
                assert entry.correct is not None
            else:
                assert entry.correct is None
