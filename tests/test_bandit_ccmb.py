"""Tests for repro.bandit.ccmb (UCB-ALP)."""

import numpy as np
import pytest

from repro.bandit.ccmb import UCBALPBandit

ARMS = (1.0, 2.0, 4.0, 8.0)


def warmed_bandit(payoffs_by_context, pulls=30, rng_seed=0, **kwargs):
    """A bandit warm-started so each (context, arm) has `pulls` samples."""
    n_contexts = len(payoffs_by_context)
    bandit = UCBALPBandit(n_contexts, ARMS, **kwargs)
    rng = np.random.default_rng(rng_seed)
    for z, payoffs in enumerate(payoffs_by_context):
        for arm, mean in enumerate(payoffs):
            for _ in range(pulls):
                bandit.update(z, arm, mean + rng.normal(0, 0.01))
    return bandit


class TestUcbIndices:
    def test_unpulled_arm_is_infinite(self):
        bandit = UCBALPBandit(2, ARMS)
        assert np.isinf(bandit.ucb_indices(0)).all()

    def test_index_exceeds_mean(self):
        bandit = UCBALPBandit(1, ARMS, exploration=1.0)
        for _ in range(5):
            bandit.update(0, 0, -1.0)
        assert bandit.ucb_indices(0)[0] > -1.0

    def test_radius_shrinks_with_pulls(self):
        bandit = UCBALPBandit(1, ARMS, exploration=1.0)
        for _ in range(5):
            bandit.update(0, 0, -1.0)
        early = bandit.ucb_indices(0)[0]
        for _ in range(500):
            bandit.update(0, 0, -1.0)
        late = bandit.ucb_indices(0)[0]
        assert late < early

    def test_zero_exploration_equals_mean(self):
        bandit = UCBALPBandit(1, ARMS, exploration=0.0)
        for _ in range(10):
            bandit.update(0, 2, -0.5)
        assert bandit.ucb_indices(0)[2] == pytest.approx(-0.5)


class TestAllocation:
    def test_no_budget_plays_best_arm(self):
        bandit = warmed_bandit([[-0.9, -0.5, -0.3, -0.1]], exploration=0.0)
        allocation = bandit.allocation(None)
        assert allocation[0, 3] == pytest.approx(1.0)

    def test_rows_are_distributions(self):
        bandit = warmed_bandit(
            [[-0.9, -0.5, -0.3, -0.1], [-0.2, -0.3, -0.4, -0.5]],
            exploration=0.0,
        )
        allocation = bandit.allocation(3.0)
        np.testing.assert_allclose(allocation.sum(axis=1), 1.0)
        assert (allocation >= 0).all()

    def test_budget_constraint_respected_in_expectation(self):
        bandit = warmed_bandit(
            [[-0.9, -0.5, -0.3, -0.1], [-0.9, -0.5, -0.3, -0.1]],
            exploration=0.0,
        )
        rho = 3.0
        allocation = bandit.allocation(rho)
        expected_cost = (allocation @ np.array(ARMS) * 0.5).sum()
        assert expected_cost <= rho + 1e-6

    def test_tight_budget_forces_cheapest(self):
        bandit = warmed_bandit([[-0.9, -0.5, -0.3, -0.1]], exploration=0.0)
        allocation = bandit.allocation(0.5)  # below the cheapest arm's cost
        assert allocation[0, 0] == pytest.approx(1.0)

    def test_lp_shifts_spend_to_context_that_benefits(self):
        # Context 0: delay falls steeply with incentive; context 1: flat.
        steep = [-2.0, -1.5, -1.0, -0.3]
        flat = [-0.6, -0.55, -0.55, -0.5]
        bandit = warmed_bandit([steep, flat], exploration=0.0)
        allocation = bandit.allocation(4.5)  # can afford 8c in one context
        spend = allocation @ np.array(ARMS)
        assert spend[0] > spend[1]

    def test_remaining_context_distribution_override(self):
        steep = [-2.0, -1.5, -1.0, -0.3]
        flat = [-0.6, -0.55, -0.55, -0.5]
        bandit = warmed_bandit([steep, flat], exploration=0.0)
        # If the steep context will never occur again, all pacing goes flat.
        allocation = bandit.allocation(
            2.0, context_distribution=np.array([0.0, 1.0])
        )
        assert allocation[1].sum() == pytest.approx(1.0)

    def test_bad_context_distribution_raises(self):
        bandit = warmed_bandit([[-1.0, -1.0, -1.0, -1.0]])
        with pytest.raises(ValueError):
            bandit.allocation(2.0, context_distribution=np.array([0.5, 0.5]))


class TestSelect:
    def test_deterministic_without_rng(self):
        bandit = warmed_bandit([[-0.9, -0.5, -0.3, -0.1]], exploration=0.0)
        picks = {bandit.select(0, None) for _ in range(5)}
        assert picks == {3}

    def test_sampling_with_rng_follows_allocation(self):
        steep = [-2.0, -1.5, -1.0, -0.3]
        bandit = warmed_bandit(
            [steep], exploration=0.0, rng=np.random.default_rng(0)
        )
        picks = [bandit.select(0, None) for _ in range(20)]
        assert all(p == 3 for p in picks)

    def test_select_validates_context(self):
        bandit = UCBALPBandit(2, ARMS)
        with pytest.raises(IndexError):
            bandit.select(5)

    def test_greedy_arm(self):
        bandit = warmed_bandit([[-0.9, -0.1, -0.5, -0.7]])
        assert bandit.greedy_arm(0) == 1


class TestConstruction:
    def test_invalid_exploration_raises(self):
        with pytest.raises(ValueError):
            UCBALPBandit(2, ARMS, exploration=-1.0)

    def test_invalid_context_distribution_raises(self):
        with pytest.raises(ValueError):
            UCBALPBandit(2, ARMS, context_distribution=np.array([1.0]))

    def test_empty_arms_raise(self):
        with pytest.raises(ValueError):
            UCBALPBandit(2, ())
