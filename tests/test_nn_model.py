"""Tests for repro.nn.model.Sequential."""

import numpy as np
import pytest

from repro.nn.layers import Conv2D, Dense, Flatten, MaxPool2D, ReLU
from repro.nn.model import Sequential


def make_mlp(rng):
    return Sequential([Dense(4, 8, rng), ReLU(), Dense(8, 3, rng)])


class TestSequential:
    def test_requires_layers(self):
        with pytest.raises(ValueError):
            Sequential([])

    def test_forward_shape(self, rng):
        model = make_mlp(rng)
        assert model.forward(np.ones((5, 4))).shape == (5, 3)

    def test_predict_proba_rows_sum_to_one(self, rng):
        model = make_mlp(rng)
        probs = model.predict_proba(rng.normal(size=(6, 4)))
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)

    def test_predict_is_argmax(self, rng):
        model = make_mlp(rng)
        x = rng.normal(size=(6, 4))
        np.testing.assert_array_equal(
            model.predict(x), np.argmax(model.predict_proba(x), axis=1)
        )

    def test_params_and_grads_parallel(self, rng):
        model = make_mlp(rng)
        params, grads = model.params(), model.grads()
        assert len(params) == len(grads) == 4  # two Dense layers x (W, b)
        for p, g in zip(params, grads):
            assert p.shape == g.shape

    def test_n_parameters(self, rng):
        model = make_mlp(rng)
        assert model.n_parameters() == 4 * 8 + 8 + 8 * 3 + 3

    def test_backward_chains_through_layers(self, rng):
        model = make_mlp(rng)
        x = rng.normal(size=(3, 4))
        out = model.forward(x, training=True)
        grad_in = model.backward(np.ones_like(out))
        assert grad_in.shape == x.shape
        assert any(np.abs(g).sum() > 0 for g in model.grads())

    def test_zero_grad(self, rng):
        model = make_mlp(rng)
        out = model.forward(rng.normal(size=(3, 4)), training=True)
        model.backward(np.ones_like(out))
        model.zero_grad()
        for g in model.grads():
            np.testing.assert_array_equal(g, 0.0)

    def test_cnn_pipeline_shapes(self, rng):
        model = Sequential(
            [
                Conv2D(3, 4, kernel=3, rng=rng, pad=1),
                ReLU(),
                MaxPool2D(2),
                Flatten(),
                Dense(4 * 4 * 4, 3, rng),
            ]
        )
        assert model.forward(rng.normal(size=(2, 3, 8, 8))).shape == (2, 3)


class TestSerialization:
    def test_state_roundtrip_exact(self, rng):
        a = make_mlp(rng)
        b = make_mlp(rng)
        x = rng.normal(size=(4, 4))
        assert not np.allclose(a.forward(x), b.forward(x))
        b.load_state(a.state())
        np.testing.assert_allclose(a.forward(x), b.forward(x))

    def test_save_load_file(self, rng, tmp_path):
        a = make_mlp(rng)
        b = make_mlp(rng)
        path = tmp_path / "model.pkl"
        a.save(path)
        b.load(path)
        x = rng.normal(size=(4, 4))
        np.testing.assert_allclose(a.forward(x), b.forward(x))

    def test_load_state_wrong_length_raises(self, rng):
        a = make_mlp(rng)
        with pytest.raises(ValueError):
            a.load_state([{}])
