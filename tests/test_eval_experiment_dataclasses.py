"""Unit tests for the experiment data classes' rendering (no heavy compute)."""

import numpy as np
import pytest

from repro.eval.experiments.fig8 import Fig8Data
from repro.eval.experiments.fig9 import Fig9Data
from repro.eval.experiments.fig10_11 import BudgetSweepData
from repro.eval.experiments.pilot_experiments import Fig5Data, Fig6Data
from repro.eval.experiments.table1 import Table1Data
from repro.eval.experiments.table2 import Fig7Data, Table2Data, Table3Data
from repro.metrics.classification import ClassificationReport
from repro.metrics.roc import RocCurve
from repro.utils.clock import TemporalContext


class TestFig5Data:
    def test_render_contains_all_contexts(self):
        data = Fig5Data(
            incentive_levels=(1.0, 4.0),
            delays={c: [500.0, 300.0] for c in TemporalContext.ordered()},
        )
        text = data.render()
        for context in TemporalContext.ordered():
            assert context.value in text
        assert "500.0" in text


class TestFig6Data:
    def test_render(self):
        data = Fig6Data(incentive_levels=(1.0, 4.0), quality=[0.65, 0.8])
        assert "0.650" in data.render()


class TestTable1Data:
    def test_overall_and_render(self):
        accuracy = {
            "CQC": {c.value: 0.9 for c in TemporalContext.ordered()},
            "Voting": {c.value: 0.8 for c in TemporalContext.ordered()},
        }
        data = Table1Data(accuracy=accuracy)
        assert data.overall("CQC") == pytest.approx(0.9)
        text = data.render()
        assert "Overall" in text and "CQC" in text


class TestTable2Data:
    def test_render_orders_schemes(self):
        reports = {
            "CrowdLearn": ClassificationReport(0.9, 0.9, 0.9, 0.9),
            "BoVW": ClassificationReport(0.6, 0.6, 0.6, 0.6),
        }
        text = Table2Data(reports=reports).render()
        lines = text.splitlines()
        crowdlearn_line = next(i for i, l in enumerate(lines) if "CrowdLearn" in l)
        bovw_line = next(i for i, l in enumerate(lines) if "BoVW" in l)
        assert crowdlearn_line < bovw_line  # paper row order

    def test_render_skips_missing_schemes(self):
        reports = {"CrowdLearn": ClassificationReport(0.9, 0.9, 0.9, 0.9)}
        text = Table2Data(reports=reports).render()
        assert "VGG16" not in text


class TestFig7Data:
    def test_render(self):
        curve = RocCurve(
            fpr=np.array([0.0, 1.0]), tpr=np.array([0.0, 1.0]), auc=0.5
        )
        text = Fig7Data(curves={"CrowdLearn": curve}).render()
        assert "macro-AUC" in text and "0.500" in text


class TestTable3Data:
    def test_na_rendering(self):
        data = Table3Data(
            algorithm_delay={"CrowdLearn": 55.0, "VGG16": 47.0},
            crowd_delay={"CrowdLearn": 340.0, "VGG16": None},
        )
        text = data.render()
        assert "N/A" in text
        assert "340.00" in text


class TestFig8Data:
    def test_render(self):
        delays = {
            "CrowdLearn (IPD)": {c: 300.0 for c in TemporalContext.ordered()},
            "Fixed": {c: 450.0 for c in TemporalContext.ordered()},
        }
        text = Fig8Data(delays=delays).render()
        assert "CrowdLearn (IPD)" in text and "morning" in text


class TestFig9Data:
    def test_render(self):
        data = Fig9Data(
            fractions=(0.0, 1.0),
            f1={"CrowdLearn": [0.8, 0.9], "Ensemble": [0.8, 0.8]},
        )
        text = data.render()
        assert "query_fraction" in text

    def test_mismatched_series_raises(self):
        data = Fig9Data(fractions=(0.0, 1.0), f1={"CrowdLearn": [0.8]})
        with pytest.raises(ValueError):
            data.render()


class TestBudgetSweepData:
    def test_renders_both_figures(self):
        data = BudgetSweepData(
            budgets_usd=(2.0, 40.0), f1=[0.7, 0.9], crowd_delay=[500.0, 300.0]
        )
        assert "Figure 10" in data.render_fig10()
        assert "Figure 11" in data.render_fig11()
