"""Tests for repro.core.committee."""

import numpy as np
import pytest

from repro.core.committee import Committee
from repro.models.base import DDAModel


class StubExpert(DDAModel):
    """An expert that always predicts a fixed distribution."""

    def __init__(self, name, distribution):
        self.name = name
        self.distribution = np.asarray(distribution, dtype=np.float64)
        self.fitted = False
        self.retrained_with = None

    def fit(self, dataset, rng):
        self.fitted = True
        return self

    def predict_proba(self, dataset):
        return np.tile(self.distribution, (len(dataset), 1))

    def retrain(self, dataset, labels, rng):
        self.retrained_with = np.asarray(labels)
        return self


@pytest.fixture
def tiny_dataset(small_dataset):
    return small_dataset.subset(range(4))


class TestCommitteeConstruction:
    def test_requires_experts(self):
        with pytest.raises(ValueError):
            Committee([])

    def test_uniform_default_weights(self):
        committee = Committee([StubExpert("a", [1, 0, 0]), StubExpert("b", [0, 1, 0])])
        np.testing.assert_allclose(committee.weights, [0.5, 0.5])

    def test_weights_renormalized(self):
        committee = Committee(
            [StubExpert("a", [1, 0, 0]), StubExpert("b", [0, 1, 0])],
            weights=np.array([2.0, 6.0]),
        )
        np.testing.assert_allclose(committee.weights, [0.25, 0.75])

    def test_invalid_weights_raise(self):
        experts = [StubExpert("a", [1, 0, 0])]
        with pytest.raises(ValueError):
            Committee(experts, weights=np.array([-1.0]))
        with pytest.raises(ValueError):
            Committee(experts, weights=np.array([0.5, 0.5]))


class TestCommitteeVote:
    def test_weighted_mixture(self, tiny_dataset):
        committee = Committee(
            [StubExpert("a", [1, 0, 0]), StubExpert("b", [0, 1, 0])],
            weights=np.array([0.75, 0.25]),
        )
        vote = committee.committee_vote(tiny_dataset)
        np.testing.assert_allclose(vote, np.tile([0.75, 0.25, 0.0], (4, 1)))

    def test_vote_rows_normalized(self, tiny_dataset):
        committee = Committee(
            [StubExpert("a", [0.5, 0.3, 0.2]), StubExpert("b", [0.1, 0.1, 0.8])]
        )
        vote = committee.committee_vote(tiny_dataset)
        np.testing.assert_allclose(vote.sum(axis=1), 1.0)

    def test_precomputed_votes_used(self, tiny_dataset):
        committee = Committee([StubExpert("a", [1, 0, 0])])
        votes = [np.tile([0.0, 0.0, 1.0], (4, 1))]
        vote = committee.committee_vote(tiny_dataset, votes)
        np.testing.assert_allclose(vote[:, 2], 1.0)

    def test_wrong_vote_count_raises(self, tiny_dataset):
        committee = Committee([StubExpert("a", [1, 0, 0])])
        with pytest.raises(ValueError):
            committee.committee_vote(tiny_dataset, votes=[])


class TestCommitteeEntropy:
    def test_agreement_low_entropy(self, tiny_dataset):
        committee = Committee(
            [StubExpert("a", [0.98, 0.01, 0.01]), StubExpert("b", [0.98, 0.01, 0.01])]
        )
        entropy = committee.committee_entropy(tiny_dataset)
        assert entropy.max() < 0.2

    def test_disagreement_high_entropy(self, tiny_dataset):
        committee = Committee(
            [StubExpert("a", [1, 0, 0]), StubExpert("b", [0, 1, 0]),
             StubExpert("c", [0, 0, 1])]
        )
        entropy = committee.committee_entropy(tiny_dataset)
        np.testing.assert_allclose(entropy, np.log(3), atol=1e-9)

    def test_entropy_shape(self, tiny_dataset):
        committee = Committee([StubExpert("a", [0.5, 0.25, 0.25])])
        assert committee.committee_entropy(tiny_dataset).shape == (4,)


class TestCommitteeLifecycle:
    def test_fit_trains_all(self, tiny_dataset, rng):
        experts = [StubExpert("a", [1, 0, 0]), StubExpert("b", [0, 1, 0])]
        Committee(experts).fit(tiny_dataset, rng)
        assert all(e.fitted for e in experts)

    def test_retrain_passes_labels(self, tiny_dataset, rng):
        experts = [StubExpert("a", [1, 0, 0])]
        committee = Committee(experts)
        labels = np.array([0, 1, 2, 0])
        committee.retrain(tiny_dataset, labels, rng)
        np.testing.assert_array_equal(experts[0].retrained_with, labels)

    def test_predict_argmax_of_vote(self, tiny_dataset):
        committee = Committee(
            [StubExpert("a", [0.2, 0.7, 0.1]), StubExpert("b", [0.1, 0.8, 0.1])]
        )
        np.testing.assert_array_equal(committee.predict(tiny_dataset), [1, 1, 1, 1])

    def test_set_weights_after_update(self, tiny_dataset):
        committee = Committee(
            [StubExpert("a", [1, 0, 0]), StubExpert("b", [0, 0, 1])]
        )
        committee.set_weights(np.array([0.0, 1.0]))
        np.testing.assert_array_equal(committee.predict(tiny_dataset), [2, 2, 2, 2])


class TestZeroMassVotes:
    """Regression: a zero-mass row must yield a uniform vote, not NaN."""

    def test_zero_mass_row_falls_back_to_uniform(self, tiny_dataset):
        committee = Committee(
            [StubExpert("a", [1, 0, 0]), StubExpert("b", [0, 1, 0])]
        )
        votes = [np.tile([0.3, 0.3, 0.4], (4, 1)).copy() for _ in range(2)]
        votes[0][2] = votes[1][2] = 0.0  # every expert: zero mass on row 2
        vote = committee.committee_vote(tiny_dataset, votes)
        assert np.isfinite(vote).all()
        np.testing.assert_allclose(vote[2], [1 / 3, 1 / 3, 1 / 3])
        # Rows with mass are untouched by the guard (bit-identical path).
        np.testing.assert_array_equal(
            vote[[0, 1, 3]],
            np.tile([0.3, 0.3, 0.4], (3, 1)) / 1.0,
        )

    def test_zero_mass_entropy_stays_finite(self, tiny_dataset):
        """The NaN used to crash entropy() downstream; now it is just log k."""
        committee = Committee([StubExpert("a", [1, 0, 0])])
        votes = [np.zeros((4, 3))]
        entropy = committee.committee_entropy(tiny_dataset, votes)
        np.testing.assert_allclose(entropy, np.log(3))

    def test_all_zero_expert_masked_out_unaffected(self, tiny_dataset):
        """A masked zero-mass expert cannot zero the committee's rows."""
        committee = Committee(
            [StubExpert("a", [0.0, 0.0, 0.0]), StubExpert("b", [0, 1, 0])]
        )
        vote = committee.committee_vote(
            tiny_dataset, mask=np.array([False, True])
        )
        np.testing.assert_allclose(vote, np.tile([0.0, 1.0, 0.0], (4, 1)))
