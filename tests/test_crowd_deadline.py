"""Tests for deadline-aware crowd queries (the real-time DDA constraint)."""

import numpy as np
import pytest

from repro.data.metadata import (
    DamageLabel,
    FailureArchetype,
    ImageMetadata,
    SceneType,
)
from repro.utils.clock import TemporalContext


def meta(image_id=0):
    return ImageMetadata(
        image_id=image_id,
        true_label=DamageLabel.SEVERE,
        archetype=FailureArchetype.NONE,
        scene=SceneType.BUILDING,
        is_fake=False,
        people_in_danger=False,
        apparent_label=DamageLabel.SEVERE,
    )


class TestDeadline:
    def test_no_deadline_keeps_everyone(self, platform):
        result = platform.post_query(meta(), 8.0, TemporalContext.MORNING)
        assert len(result.responses) == 5

    def test_all_kept_responses_meet_deadline(self, platform):
        deadline = 400.0
        for i in range(20):
            result = platform.post_query(
                meta(i), 8.0, TemporalContext.MORNING, deadline_seconds=deadline
            )
            for response in result.responses:
                assert response.delay_seconds <= deadline

    def test_tight_deadline_drops_slow_morning_crowd(self, platform):
        """At a 1c morning incentive (mean ~1150s) a 300s deadline starves."""
        kept = 0
        for i in range(20):
            result = platform.post_query(
                meta(i), 1.0, TemporalContext.MORNING, deadline_seconds=300.0
            )
            kept += len(result.responses)
        assert kept < 20  # far fewer than the 100 assigned HITs

    def test_generous_deadline_keeps_evening_crowd(self, platform):
        kept = 0
        for i in range(10):
            result = platform.post_query(
                meta(i), 8.0, TemporalContext.EVENING, deadline_seconds=2000.0
            )
            kept += len(result.responses)
        assert kept >= 40  # nearly all of the 50 assigned HITs

    def test_higher_incentive_beats_the_deadline_more_often(self, platform):
        """The timeliness story: paying more gets answers before the cutoff."""
        def kept_at(incentive):
            total = 0
            for i in range(25):
                result = platform.post_query(
                    meta(i), incentive, TemporalContext.MORNING,
                    deadline_seconds=600.0,
                )
                total += len(result.responses)
            return total

        assert kept_at(20.0) > kept_at(2.0)

    def test_history_only_records_arrived_responses(self, population, rng):
        from repro.crowd.delay import DelayModel
        from repro.crowd.platform import CrowdsourcingPlatform
        from repro.crowd.quality import QualityModel

        platform = CrowdsourcingPlatform(
            population=population,
            delay_model=DelayModel(),
            quality_model=QualityModel(),
            rng=rng,
            workers_per_query=5,
        )
        result = platform.post_query(
            meta(), 1.0, TemporalContext.MORNING, deadline_seconds=200.0
        )
        assert len(platform.history) == len(result.responses)

    def test_invalid_deadline_raises(self, platform):
        with pytest.raises(ValueError):
            platform.post_query(
                meta(), 8.0, TemporalContext.MORNING, deadline_seconds=0.0
            )
