"""Tests for deadline-aware crowd queries (the real-time DDA constraint)."""

import numpy as np
import pytest

from repro.data.metadata import (
    DamageLabel,
    FailureArchetype,
    ImageMetadata,
    SceneType,
)
from repro.utils.clock import TemporalContext


def meta(image_id=0):
    return ImageMetadata(
        image_id=image_id,
        true_label=DamageLabel.SEVERE,
        archetype=FailureArchetype.NONE,
        scene=SceneType.BUILDING,
        is_fake=False,
        people_in_danger=False,
        apparent_label=DamageLabel.SEVERE,
    )


class TestDeadline:
    def test_no_deadline_keeps_everyone(self, platform):
        result = platform.post_query(meta(), 8.0, TemporalContext.MORNING)
        assert len(result.responses) == 5

    def test_all_kept_responses_meet_deadline(self, platform):
        deadline = 400.0
        for i in range(20):
            result = platform.post_query(
                meta(i), 8.0, TemporalContext.MORNING, deadline_seconds=deadline
            )
            for response in result.responses:
                assert response.delay_seconds <= deadline

    def test_tight_deadline_drops_slow_morning_crowd(self, platform):
        """At a 1c morning incentive (mean ~1150s) a 300s deadline starves."""
        kept = 0
        for i in range(20):
            result = platform.post_query(
                meta(i), 1.0, TemporalContext.MORNING, deadline_seconds=300.0
            )
            kept += len(result.responses)
        assert kept < 20  # far fewer than the 100 assigned HITs

    def test_generous_deadline_keeps_evening_crowd(self, platform):
        kept = 0
        for i in range(10):
            result = platform.post_query(
                meta(i), 8.0, TemporalContext.EVENING, deadline_seconds=2000.0
            )
            kept += len(result.responses)
        assert kept >= 40  # nearly all of the 50 assigned HITs

    def test_higher_incentive_beats_the_deadline_more_often(self, platform):
        """The timeliness story: paying more gets answers before the cutoff."""
        def kept_at(incentive):
            total = 0
            for i in range(25):
                result = platform.post_query(
                    meta(i), incentive, TemporalContext.MORNING,
                    deadline_seconds=600.0,
                )
                total += len(result.responses)
            return total

        assert kept_at(20.0) > kept_at(2.0)

    def test_history_only_records_arrived_responses(self, population, rng):
        from repro.crowd.delay import DelayModel
        from repro.crowd.platform import CrowdsourcingPlatform
        from repro.crowd.quality import QualityModel

        platform = CrowdsourcingPlatform(
            population=population,
            delay_model=DelayModel(),
            quality_model=QualityModel(),
            rng=rng,
            workers_per_query=5,
        )
        result = platform.post_query(
            meta(), 1.0, TemporalContext.MORNING, deadline_seconds=200.0
        )
        assert len(platform.history) == len(result.responses)

    def test_invalid_deadline_raises(self, platform):
        with pytest.raises(ValueError):
            platform.post_query(
                meta(), 8.0, TemporalContext.MORNING, deadline_seconds=0.0
            )


class TestZeroResponses:
    """A deadline can starve a query entirely; nothing downstream may NaN."""

    def zero_response_result(self, platform):
        """Post at a tiny deadline until a query keeps no responses."""
        for i in range(50):
            result = platform.post_query(
                meta(i), 1.0, TemporalContext.MORNING, deadline_seconds=1.0
            )
            if not result.responses:
                return result
        pytest.fail("no starved query in 50 posts at a 1s deadline")

    def test_mean_delay_raises_not_nan(self, platform):
        result = self.zero_response_result(platform)
        with pytest.raises(ValueError, match="no responses"):
            result.mean_delay

    def test_feature_encoding_is_finite_zeros(self, platform):
        import numpy as np

        from repro.crowd.questionnaire import encode_query_features

        result = self.zero_response_result(platform)
        features = encode_query_features(result)
        assert features.shape == (11,)
        assert np.all(features == 0.0)
        assert np.all(np.isfinite(features))

    def test_cqc_tolerates_empty_result_list(self):
        import numpy as np

        from repro.core.cqc import CrowdQualityControl

        cqc = CrowdQualityControl()
        cqc._fitted = True  # bypass training; empty inputs shortcut anyway
        assert cqc.truthful_labels([]).shape == (0,)
        dists = cqc.label_distributions([])
        assert dists.shape == (0, 3)
        assert np.all(np.isfinite(dists))

    def test_cqc_fit_on_empty_raises(self):
        import numpy as np

        from repro.core.cqc import CrowdQualityControl

        with pytest.raises(ValueError, match="zero query results"):
            CrowdQualityControl().fit([], np.empty(0, dtype=np.int64))
