"""Tests for repro.eval.diagnostics."""

import numpy as np
import pytest

from repro.data.dataset import DisasterDataset
from repro.data.metadata import DamageLabel, FailureArchetype
from repro.eval.diagnostics import diagnose


class OracleOnPixelsModel:
    """Predicts the *apparent* label perfectly — the idealized pixel-only AI.

    Honest images come out right; deceptive archetypes come out confidently
    wrong, which is exactly the paper's Figure 1 failure pattern.
    """

    name = "pixel-oracle"

    def predict_proba(self, dataset):
        probs = np.full((len(dataset), DamageLabel.count()), 0.02)
        for i, meta in enumerate(dataset.metadata()):
            probs[i, int(meta.apparent_label)] = 0.96
        return probs / probs.sum(axis=1, keepdims=True)


class UncertainModel:
    """Always near-uniform: wrong often, but never confidently."""

    name = "uncertain"

    def predict_proba(self, dataset):
        probs = np.full((len(dataset), 3), 1 / 3)
        probs[:, 0] += 0.01
        return probs / probs.sum(axis=1, keepdims=True)


class TestDiagnose:
    def test_pixel_oracle_fails_on_deceptive_archetypes(self, small_dataset):
        report = diagnose(OracleOnPixelsModel(), small_dataset)
        for archetype in FailureArchetype.deceptive():
            diagnosis = report.diagnoses[archetype]
            if diagnosis.n_images:
                assert diagnosis.accuracy == 0.0
                assert diagnosis.confidently_wrong_rate == 1.0
        honest = report.diagnoses[FailureArchetype.NONE]
        assert honest.accuracy == 1.0
        assert honest.confidently_wrong_rate == 0.0

    def test_innate_failures_detected(self, small_dataset):
        report = diagnose(OracleOnPixelsModel(), small_dataset)
        innate = report.innate_failure_archetypes()
        for archetype in FailureArchetype.deceptive():
            if report.diagnoses[archetype].n_images:
                assert archetype in innate
        assert FailureArchetype.NONE not in innate

    def test_uncertain_model_not_confidently_wrong(self, small_dataset):
        report = diagnose(UncertainModel(), small_dataset)
        for diagnosis in report.diagnoses.values():
            assert diagnosis.confidently_wrong_rate == 0.0
        assert report.innate_failure_archetypes() == []

    def test_overall_accuracy_weighted(self, small_dataset):
        report = diagnose(OracleOnPixelsModel(), small_dataset)
        expected = float(
            np.mean(
                [
                    int(m.apparent_label) == int(m.true_label)
                    for m in small_dataset.metadata()
                ]
            )
        )
        assert report.overall_accuracy() == pytest.approx(expected)

    def test_predicted_distribution_sums_to_one(self, small_dataset):
        report = diagnose(OracleOnPixelsModel(), small_dataset)
        for diagnosis in report.diagnoses.values():
            if diagnosis.n_images:
                assert diagnosis.predicted_distribution.sum() == pytest.approx(1.0)

    def test_render_contains_archetypes(self, small_dataset):
        text = diagnose(OracleOnPixelsModel(), small_dataset).render()
        assert "pixel-oracle" in text
        assert "fake" in text

    def test_real_expert_diagnosis(self, small_split):
        """A real (tiny) CNN shows the innate-failure fingerprint."""
        from repro.models.vgg import VGGModel

        train, test = small_split
        model = VGGModel(epochs=3, width=4)
        model.fit(train, np.random.default_rng(0))
        report = diagnose(model, test)
        assert 0.0 <= report.overall_accuracy() <= 1.0
        assert "Failure report" in report.render()

    def test_validation(self, small_dataset):
        with pytest.raises(ValueError):
            diagnose(OracleOnPixelsModel(), small_dataset, confidence_threshold=0.0)
        with pytest.raises(ValueError):
            diagnose(OracleOnPixelsModel(), DisasterDataset([]))
