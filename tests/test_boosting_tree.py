"""Tests for repro.boosting.tree."""

import numpy as np
import pytest

from repro.boosting.tree import RegressionTree, TreeNode


class TestTreeNode:
    def test_leaf_flag(self):
        assert TreeNode().is_leaf
        assert not TreeNode(feature=0, threshold=0.5).is_leaf


class TestRegressionTree:
    def test_fits_step_function(self, rng):
        x = rng.uniform(0, 1, size=(200, 1))
        target = np.where(x[:, 0] > 0.5, 2.0, -1.0)
        # Fit against gradients of squared loss from a zero prediction:
        # grad = -(target), Newton leaf ≈ mean(target) for lambda -> 0.
        tree = RegressionTree(max_depth=2, reg_lambda=1e-6)
        tree.fit(x, -target)
        pred = tree.predict(x)
        np.testing.assert_allclose(pred, target, atol=0.05)

    def test_depth_zero_is_single_leaf(self, rng):
        x = rng.normal(size=(50, 3))
        grad = rng.normal(size=50)
        tree = RegressionTree(max_depth=0).fit(x, grad)
        assert tree.n_leaves() == 1
        assert tree.depth() == 0

    def test_leaf_value_is_newton_step(self, rng):
        x = rng.normal(size=(20, 2))
        grad = rng.normal(size=20)
        hess = np.abs(rng.normal(size=20)) + 0.1
        tree = RegressionTree(max_depth=0, reg_lambda=2.0).fit(x, grad, hess)
        expected = -grad.sum() / (hess.sum() + 2.0)
        assert tree.predict(x)[0] == pytest.approx(expected)

    def test_respects_max_depth(self, rng):
        x = rng.normal(size=(300, 4))
        grad = rng.normal(size=300)
        tree = RegressionTree(max_depth=3).fit(x, grad)
        assert tree.depth() <= 3

    def test_min_samples_leaf(self, rng):
        x = rng.normal(size=(20, 1))
        grad = rng.normal(size=20)
        tree = RegressionTree(max_depth=8, min_samples_leaf=8).fit(x, grad)
        # With 20 samples and 8 per leaf, at most 2 leaves.
        assert tree.n_leaves() <= 2

    def test_constant_feature_no_split(self):
        x = np.ones((30, 1))
        grad = np.linspace(-1, 1, 30)
        tree = RegressionTree(max_depth=3).fit(x, grad)
        assert tree.n_leaves() == 1

    def test_picks_informative_feature(self, rng):
        x = np.column_stack([rng.normal(size=100), np.linspace(0, 1, 100)])
        grad = np.where(x[:, 1] > 0.5, 1.0, -1.0)
        tree = RegressionTree(max_depth=1).fit(x, grad)
        assert tree.root is not None and tree.root.feature == 1

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            RegressionTree().predict(np.zeros((2, 2)))

    def test_predict_wrong_width_raises(self, rng):
        tree = RegressionTree(max_depth=1).fit(
            rng.normal(size=(20, 3)), rng.normal(size=20)
        )
        with pytest.raises(ValueError):
            tree.predict(np.zeros((2, 2)))

    def test_misaligned_inputs_raise(self, rng):
        with pytest.raises(ValueError):
            RegressionTree().fit(rng.normal(size=(10, 2)), rng.normal(size=5))

    def test_negative_hessian_raises(self, rng):
        with pytest.raises(ValueError):
            RegressionTree().fit(
                rng.normal(size=(5, 1)), np.ones(5), hess=-np.ones(5)
            )

    def test_invalid_hyperparams_raise(self):
        with pytest.raises(ValueError):
            RegressionTree(max_depth=-1)
        with pytest.raises(ValueError):
            RegressionTree(min_samples_leaf=0)
        with pytest.raises(ValueError):
            RegressionTree(reg_lambda=-1.0)
