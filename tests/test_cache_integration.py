"""Integration tests for the shared prediction cache in the closed loop.

The cache's contract is *invisible speed*: a cached deployment must be
bit-identical to an uncached one while computing each expert's votes once
per (model version, pool) instead of once per call site, and no stale
array may survive a retrain, a guard rollback, or an expert swap-in.
"""

from __future__ import annotations

import dataclasses
import pickle
from collections import Counter

import numpy as np
import pytest

from repro.core.cache import PredictionCache, pool_key
from repro.core.committee import Committee
from repro.core.guards import GuardCounters, GuardPolicy, ModelGuard
from repro.data.dataset import build_dataset
from repro.eval.runner import build_crowdlearn, prepare
from repro.models.base import next_model_version
from repro.models.bovw_model import BoVWModel


@pytest.fixture(scope="module")
def setup():
    return prepare(seed=7, fast=True)


def _run(setup, cache_enabled: bool, name: str):
    config = dataclasses.replace(setup.config, cache_enabled=cache_enabled)
    system = build_crowdlearn(setup, config=config, platform_name=name)
    return system, system.run(setup.make_stream(name))


class TestDigestParity:
    def test_cached_run_bit_identical_to_uncached(self, setup):
        """Caching must never change a single bit of the loop's outputs."""
        cached_system, cached = _run(setup, True, "cache-parity")
        uncached_system, uncached = _run(setup, False, "cache-parity")
        assert uncached_system.cache is None
        assert len(cached.cycles) == len(uncached.cycles)
        for ca, cb in zip(cached.cycles, uncached.cycles):
            np.testing.assert_array_equal(ca.true_labels, cb.true_labels)
            np.testing.assert_array_equal(ca.final_labels, cb.final_labels)
            np.testing.assert_array_equal(ca.final_scores, cb.final_scores)
            np.testing.assert_array_equal(ca.query_indices, cb.query_indices)
            np.testing.assert_array_equal(ca.expert_weights, cb.expert_weights)
            np.testing.assert_array_equal(
                ca.incentives_cents, cb.incentives_cents
            )
            assert ca.cost_cents == cb.cost_cents
        # ...and the parity is not vacuous: the cache did serve votes.
        stats = cached_system.cache.stats()
        assert stats["prediction_hits"] > 0, stats

    def test_checkpoint_drops_entries_but_keeps_wiring(self, setup):
        """Pickled systems carry the cache, not its (process-bound) arrays."""
        system, _ = _run(setup, True, "cache-pickle")
        assert len(system.cache.predictions) > 0
        clone = pickle.loads(pickle.dumps(system))
        assert clone.cache is not None
        assert len(clone.cache.predictions) == 0
        assert len(clone.cache.features) == 0
        # The committee and its BoVW member still point at the one store.
        assert clone.committee.cache is clone.cache
        for expert in clone.committee.experts:
            if isinstance(expert, BoVWModel):
                assert expert._feature_cache is clone.cache.features


class TestComputeOncePerVersion:
    def test_votes_computed_once_per_pool_and_version(self, setup, monkeypatch):
        """Cached: one compute per (expert, version, pool); uncached: >= 3.

        The redundancy lives in guard holdout scoring (quarantine check,
        incumbent scoring, re-admission probes all hit the same pool at an
        unchanged version), so guards stay at their defaults here.
        ``predict_proba`` is counted at class level (instance-level
        wrappers would change what guard snapshots pickle).
        """
        calls: Counter = Counter()
        classes = {type(e) for e in setup.base_committee.experts}
        for cls in classes:
            original = cls.predict_proba

            def counted(self, dataset, _original=original):
                calls[(self.name, self.model_version, pool_key(dataset))] += 1
                return _original(self, dataset)

            monkeypatch.setattr(cls, "predict_proba", counted)

        config = dataclasses.replace(setup.config, cache_enabled=True)
        system = build_crowdlearn(
            setup, config=config, platform_name="cache-counts"
        )
        system.run(setup.make_stream("cache-counts"))
        cached_calls = dict(calls)
        assert cached_calls, "counting wrapper never fired"
        assert max(cached_calls.values()) == 1, {
            k: v for k, v in cached_calls.items() if v > 1
        }

        calls.clear()
        config = dataclasses.replace(setup.config, cache_enabled=False)
        system = build_crowdlearn(
            setup, config=config, platform_name="cache-counts"
        )
        system.run(setup.make_stream("cache-counts"))
        uncached_calls = dict(calls)
        # The same loop recomputes holdout votes at >= 3 call sites.
        assert max(uncached_calls.values()) >= 3
        assert sum(uncached_calls.values()) > sum(cached_calls.values())


class _VersionedExpert:
    """Pickle-able expert whose votes and version change on 'retraining'."""

    def __init__(self, name: str, n_correct: int, n_classes: int = 3) -> None:
        self.name = name
        self.n_correct = n_correct
        self.n_classes = n_classes
        self.model_version = next_model_version()
        self.calls = 0

    def corrupt(self, n_correct: int) -> None:
        """What a bad retrain does: new behavior, new version."""
        self.n_correct = n_correct
        self.bump_version()

    def bump_version(self) -> None:
        self.model_version = next_model_version(self.model_version)

    def predict(self, dataset) -> np.ndarray:
        return np.argmax(self.predict_proba(dataset), axis=1)

    def predict_proba(self, dataset) -> np.ndarray:
        self.calls += 1
        truth = dataset.labels()
        predicted = truth.copy()
        predicted[self.n_correct:] = (
            truth[self.n_correct:] + 1
        ) % self.n_classes
        return np.eye(self.n_classes)[predicted]

    def attach_cache(self, cache) -> None:
        return None

    def fit(self, dataset, rng):
        return self

    def retrain(self, dataset, labels, rng):
        self.corrupt(self.n_correct)
        return self


class _CorruptingMIC:
    def __init__(self, damage: dict) -> None:
        self.damage = damage

    def retrain_experts(self, committee, query_images, truthful, pool, rng):
        for m, n_correct in self.damage.items():
            committee.experts[m].corrupt(n_correct)


class _StubCommittee:
    def __init__(self, experts):
        self.experts = experts


@pytest.fixture()
def holdout():
    return build_dataset(n_images=10, rng=np.random.default_rng(3))


class TestRollbackInvalidation:
    def test_restored_snapshot_never_serves_candidate_votes(self, holdout):
        """After a rollback the cache must vote like the restored expert.

        The candidate's arrays were stored under its own (newer) version;
        the rollback must drop them and re-serve the snapshot's behavior
        even though the snapshot was pickled (entry-free) and restored.
        """
        policy = GuardPolicy(
            regression_tolerance=0.25,
            quarantine=False,
            drift_detector=False,
            sentinel=False,
        )
        guard = ModelGuard(policy, holdout, 2)
        cache = PredictionCache()
        guard.cache = cache
        committee = _StubCommittee(
            [_VersionedExpert("a", 8), _VersionedExpert("b", 9)]
        )
        incumbent_votes = cache.predict_proba(committee.experts[0], holdout)
        counters = GuardCounters()
        guard.guarded_retrain(
            _CorruptingMIC({0: 2}),  # 0.8 -> 0.2, far past the tolerance
            committee,
            [],
            np.empty(0, dtype=np.int64),
            holdout,
            np.random.default_rng(0),
            counters,
        )
        assert counters.rollbacks == 1
        restored = committee.experts[0]
        assert restored.n_correct == 8
        # No entry for "a" at any version other than the restored one.
        for _ns, name, version, _pool in cache.predictions.keys():
            if name == "a":
                assert version == restored.model_version
        served = cache.predict_proba(restored, holdout)
        np.testing.assert_array_equal(served, incumbent_votes)
        # The untouched expert kept its version and its cache entries.
        assert committee.experts[1].name == "b"

    def test_swapped_in_expert_is_not_served_predecessor_votes(self, holdout):
        """Replacing a committee member must not leak the old one's votes."""
        cache = PredictionCache()
        committee = Committee([_VersionedExpert("a", 2)])
        committee.attach_cache(cache)
        before = committee.expert_votes(holdout)[0]
        replacement = _VersionedExpert("a", 9)  # same name, fresh version
        committee.experts[0] = replacement
        after = committee.expert_votes(holdout)[0]
        assert replacement.calls == 1  # computed, not served stale
        assert not np.array_equal(before, after)


class TestRetrainInvalidation:
    def test_retrain_without_version_bump_is_bumped_and_dropped(self, holdout):
        """Legacy experts that forget to bump still cannot serve stale votes."""

        class _Forgetful(_VersionedExpert):
            def retrain(self, dataset, labels, rng):
                self.n_correct = 1  # changed behavior, same version
                return self

        cache = PredictionCache()
        expert = _Forgetful("f", 9)
        committee = Committee([expert])
        committee.attach_cache(cache)
        committee.expert_votes(holdout)
        version_before = expert.model_version
        committee.retrain(holdout, holdout.labels(), np.random.default_rng(0))
        assert expert.model_version > version_before  # committee bumped it
        votes = committee.expert_votes(holdout)[0]
        np.testing.assert_array_equal(
            np.argmax(votes, axis=1)[1:], (holdout.labels()[1:] + 1) % 3
        )


class TestBoundedFeatureStore:
    def test_feature_cache_never_exceeds_bound(self, small_dataset, rng):
        """The BoVW feature memo is LRU-bounded, not append-only."""
        bound = 16
        model = BoVWModel(
            vocabulary_size=8,
            hidden=4,
            epochs=1,
            include_global=False,
            feature_cache_size=bound,
        )
        train = small_dataset.subset(list(range(40)))
        model.fit(train, rng)
        assert len(model._feature_cache) <= bound
        for _ in range(3):
            model.predict_proba(small_dataset)
            assert len(model._feature_cache) <= bound
        assert model._feature_cache.stats.evictions > 0

    def test_shared_store_is_bounded_too(self, small_dataset, rng):
        model = BoVWModel(
            vocabulary_size=8, hidden=4, epochs=1, include_global=False
        )
        cache = PredictionCache(max_features=16)
        model.attach_cache(cache)
        model.fit(small_dataset.subset(list(range(40))), rng)
        model.predict_proba(small_dataset)
        assert model._feature_cache is cache.features
        assert len(cache.features) <= 16
