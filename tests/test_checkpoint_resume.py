"""Tests for deployment checkpointing (crash-recovery round trips)."""

import numpy as np
import pytest

from repro.core.system import CrowdLearnSystem, RunOutcome
from repro.eval.persistence import (
    cycle_outcome_from_dict,
    cycle_outcome_to_dict,
    load_checkpoint,
    run_outcome_from_dict,
    run_outcome_to_dict,
    save_checkpoint,
)
from repro.eval.runner import build_crowdlearn, prepare


@pytest.fixture(scope="module")
def setup():
    return prepare(seed=5, fast=True)


@pytest.fixture(scope="module")
def uninterrupted(setup):
    system = build_crowdlearn(setup)
    return system.run(setup.make_stream("ckpt"))


def assert_outcomes_equal(a: RunOutcome, b: RunOutcome) -> None:
    assert len(a.cycles) == len(b.cycles)
    for ca, cb in zip(a.cycles, b.cycles):
        assert ca.cycle_index == cb.cycle_index
        assert ca.context == cb.context
        np.testing.assert_array_equal(ca.true_labels, cb.true_labels)
        np.testing.assert_array_equal(ca.final_labels, cb.final_labels)
        np.testing.assert_array_equal(ca.final_scores, cb.final_scores)
        np.testing.assert_array_equal(ca.query_indices, cb.query_indices)
        np.testing.assert_array_equal(ca.incentives_cents, cb.incentives_cents)
        assert ca.crowd_delay == cb.crowd_delay
        assert ca.cost_cents == cb.cost_cents
        np.testing.assert_array_equal(ca.expert_weights, cb.expert_weights)
        assert ca.resilience == cb.resilience
        assert ca.guards == cb.guards


class TestCheckpointResume:
    def test_resume_matches_uninterrupted(self, setup, uninterrupted, tmp_path):
        """Crash after cycle k, resume → bit-identical final outcome."""
        path = tmp_path / "deployment.ckpt"
        system = build_crowdlearn(setup)
        stream = setup.make_stream("ckpt")
        outcome = RunOutcome()
        k = 3  # simulate a crash after three completed cycles
        for t in range(k):
            outcome.append(system.run_cycle(stream.cycle(t)))
        save_checkpoint(path, system, stream, outcome, k)

        resumed = CrowdLearnSystem.resume_from_checkpoint(path)
        assert_outcomes_equal(resumed, uninterrupted)

    def test_run_with_checkpointing_matches_plain_run(
        self, setup, uninterrupted, tmp_path
    ):
        path = tmp_path / "live.ckpt"
        system = build_crowdlearn(setup)
        outcome = system.run(
            setup.make_stream("ckpt"), checkpoint_path=path, checkpoint_every=2
        )
        assert_outcomes_equal(outcome, uninterrupted)
        # The final snapshot records the whole completed run.
        _, _, saved_outcome, next_cycle = load_checkpoint(path)
        assert next_cycle == setup.config.n_cycles
        assert_outcomes_equal(saved_outcome, uninterrupted)

    def test_atomic_write_leaves_no_tmp(self, setup, tmp_path):
        path = tmp_path / "a.ckpt"
        system = build_crowdlearn(setup)
        stream = setup.make_stream("ckpt")
        save_checkpoint(path, system, stream, RunOutcome(), 0)
        save_checkpoint(path, system, stream, RunOutcome(), 0)
        assert path.exists()
        assert not (tmp_path / "a.ckpt.tmp").exists()

    def test_invalid_inputs(self, setup, tmp_path):
        system = build_crowdlearn(setup)
        stream = setup.make_stream("ckpt")
        with pytest.raises(ValueError):
            save_checkpoint(tmp_path / "x", system, stream, RunOutcome(), -1)
        with pytest.raises(ValueError):
            system.run(stream, checkpoint_path=tmp_path / "x",
                       checkpoint_every=0)

    def test_version_mismatch_rejected(self, setup, tmp_path):
        import pickle

        path = tmp_path / "old.ckpt"
        path.write_bytes(pickle.dumps({"checkpoint_version": 999}))
        with pytest.raises(ValueError, match="checkpoint version"):
            load_checkpoint(path)

    def test_corrupt_file_rejected(self, setup, tmp_path):
        import pickle

        path = tmp_path / "bad.ckpt"
        path.write_bytes(b"\x80\x04not really a pickle")
        with pytest.raises(ValueError, match="corrupt checkpoint"):
            load_checkpoint(path)
        path.write_bytes(pickle.dumps([1, 2, 3]))
        with pytest.raises(ValueError, match="not a snapshot"):
            load_checkpoint(path)

    def test_integrity_check_rejects_tampered_state(self, setup, tmp_path):
        """A bit flip inside the pickled state fails the SHA-256 check."""
        import pickle

        path = tmp_path / "tampered.ckpt"
        system = build_crowdlearn(setup)
        stream = setup.make_stream("ckpt")
        save_checkpoint(path, system, stream, RunOutcome(), 0)
        envelope = pickle.loads(path.read_bytes())
        state = bytearray(envelope["state"])
        state[len(state) // 2] ^= 0xFF
        envelope["state"] = bytes(state)
        path.write_bytes(pickle.dumps(envelope))
        with pytest.raises(ValueError, match="integrity check"):
            load_checkpoint(path)

    def test_missing_digest_rejected(self, setup, tmp_path):
        import pickle

        path = tmp_path / "nodigest.ckpt"
        system = build_crowdlearn(setup)
        stream = setup.make_stream("ckpt")
        save_checkpoint(path, system, stream, RunOutcome(), 0)
        envelope = pickle.loads(path.read_bytes())
        del envelope["sha256"]
        path.write_bytes(pickle.dumps(envelope))
        with pytest.raises(ValueError, match="not a snapshot"):
            load_checkpoint(path)


class TestOutcomeJsonRoundtrip:
    def test_cycle_outcome_roundtrip(self, uninterrupted):
        cycle = uninterrupted.cycles[0]
        restored = cycle_outcome_from_dict(cycle_outcome_to_dict(cycle))
        assert restored.cycle_index == cycle.cycle_index
        assert restored.context == cycle.context
        np.testing.assert_array_equal(restored.final_labels, cycle.final_labels)
        np.testing.assert_allclose(restored.final_scores, cycle.final_scores)
        assert restored.resilience == cycle.resilience
        assert restored.guards == cycle.guards

    def test_guards_default_when_absent(self, uninterrupted):
        """Pre-guardrails archives (no "guards" key) still load."""
        from repro.core.guards import GuardCounters

        data = cycle_outcome_to_dict(uninterrupted.cycles[0])
        del data["guards"]
        restored = cycle_outcome_from_dict(data)
        assert restored.guards == GuardCounters()

    def test_run_outcome_roundtrip_is_json_safe(self, uninterrupted):
        import json

        data = json.loads(json.dumps(run_outcome_to_dict(uninterrupted)))
        restored = run_outcome_from_dict(data)
        assert_outcomes_equal(restored, uninterrupted)

    def test_missing_field_raises(self, uninterrupted):
        data = cycle_outcome_to_dict(uninterrupted.cycles[0])
        del data["final_labels"]
        with pytest.raises(ValueError, match="missing field"):
            cycle_outcome_from_dict(data)


class TestIntegrityCheckNames:
    """CheckpointIntegrityError names the specific failing check."""

    @pytest.fixture()
    def checkpoint(self, setup, tmp_path):
        path = tmp_path / "named.ckpt"
        system = build_crowdlearn(setup)
        save_checkpoint(path, system, setup.make_stream("named"), RunOutcome(), 0)
        return path

    @staticmethod
    def _tamper(path, mutate):
        import pickle

        envelope = pickle.loads(path.read_bytes())
        mutate(envelope)
        path.write_bytes(pickle.dumps(envelope))

    def _check_of(self, path):
        from repro.eval.persistence import CheckpointIntegrityError

        with pytest.raises(CheckpointIntegrityError) as excinfo:
            load_checkpoint(path)
        return excinfo.value.check

    def test_format(self, tmp_path):
        path = tmp_path / "garbage.ckpt"
        path.write_bytes(b"not a pickle at all")
        assert self._check_of(path) == "format"

    def test_version(self, checkpoint):
        self._tamper(
            checkpoint, lambda env: env.update(checkpoint_version=999)
        )
        assert self._check_of(checkpoint) == "version"

    def test_length(self, checkpoint):
        self._tamper(
            checkpoint, lambda env: env.update(length=env["length"] + 1)
        )
        assert self._check_of(checkpoint) == "length"

    def test_sha256(self, checkpoint):
        def flip_one_byte(env):
            state = bytearray(env["state"])
            state[len(state) // 2] ^= 0xFF
            env["state"] = bytes(state)

        self._tamper(checkpoint, flip_one_byte)
        assert self._check_of(checkpoint) == "sha256"

    def test_error_is_value_error(self):
        from repro.eval.persistence import CheckpointIntegrityError

        assert issubclass(CheckpointIntegrityError, ValueError)
