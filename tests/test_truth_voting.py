"""Tests for repro.truth.voting."""

import numpy as np
import pytest

from repro.crowd.tasks import (
    CrowdQuery,
    QueryResult,
    QuestionnaireAnswers,
    WorkerResponse,
)
from repro.data.metadata import DamageLabel, SceneType
from repro.truth.voting import aggregate_by_voting, majority_vote, vote_distribution
from repro.utils.clock import TemporalContext


def result_of(labels, query_id=0):
    responses = [
        WorkerResponse(
            worker_id=i,
            label=label,
            questionnaire=QuestionnaireAnswers(
                says_fake=False, scene=SceneType.ROAD, says_people_in_danger=False
            ),
            delay_seconds=1.0,
        )
        for i, label in enumerate(labels)
    ]
    return QueryResult(
        query=CrowdQuery(query_id, 0, 1.0, TemporalContext.MORNING),
        responses=responses,
    )


class TestVoteDistribution:
    def test_counts_normalized(self):
        result = result_of(
            [DamageLabel.SEVERE, DamageLabel.SEVERE, DamageLabel.NO_DAMAGE]
        )
        dist = vote_distribution(result)
        np.testing.assert_allclose(dist, [1 / 3, 0.0, 2 / 3])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            vote_distribution(result_of([]))


class TestMajorityVote:
    def test_plurality_wins(self):
        result = result_of(
            [
                DamageLabel.MODERATE,
                DamageLabel.MODERATE,
                DamageLabel.SEVERE,
            ]
        )
        assert majority_vote(result) == int(DamageLabel.MODERATE)

    def test_tie_breaks_to_lower_label(self):
        result = result_of([DamageLabel.NO_DAMAGE, DamageLabel.SEVERE])
        assert majority_vote(result) == int(DamageLabel.NO_DAMAGE)


class TestAggregateByVoting:
    def test_batch(self):
        results = [
            result_of([DamageLabel.SEVERE] * 3, query_id=0),
            result_of([DamageLabel.NO_DAMAGE] * 3, query_id=1),
        ]
        np.testing.assert_array_equal(aggregate_by_voting(results), [2, 0])

    def test_empty_batch_raises(self):
        with pytest.raises(ValueError):
            aggregate_by_voting([])
