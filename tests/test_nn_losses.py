"""Tests for repro.nn.losses."""

import numpy as np
import pytest

from repro.nn.losses import MeanSquaredError, SoftmaxCrossEntropy, softmax


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        probs = softmax(rng.normal(size=(10, 4)))
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)

    def test_stable_for_large_logits(self):
        probs = softmax(np.array([[1000.0, 1000.0]]))
        np.testing.assert_allclose(probs, [[0.5, 0.5]])

    def test_ordering_preserved(self):
        probs = softmax(np.array([[1.0, 3.0, 2.0]]))
        assert np.argmax(probs) == 1


class TestSoftmaxCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        loss = SoftmaxCrossEntropy()
        logits = np.array([[100.0, 0.0, 0.0]])
        assert loss.forward(logits, np.array([0])) == pytest.approx(0.0, abs=1e-6)

    def test_uniform_prediction_is_log_k(self):
        loss = SoftmaxCrossEntropy()
        logits = np.zeros((4, 3))
        value = loss.forward(logits, np.array([0, 1, 2, 0]))
        assert value == pytest.approx(np.log(3))

    def test_gradient_matches_numerical(self, rng):
        loss = SoftmaxCrossEntropy()
        logits = rng.normal(size=(5, 3))
        targets = rng.integers(0, 3, size=5)
        loss.forward(logits, targets)
        analytic = loss.backward()
        eps = 1e-6
        numeric = np.zeros_like(logits)
        for i in range(logits.shape[0]):
            for j in range(logits.shape[1]):
                logits[i, j] += eps
                up = loss.forward(logits, targets)
                logits[i, j] -= 2 * eps
                down = loss.forward(logits, targets)
                logits[i, j] += eps
                numeric[i, j] = (up - down) / (2 * eps)
        loss.forward(logits, targets)
        np.testing.assert_allclose(analytic, numeric, atol=1e-6)

    def test_accepts_soft_targets(self, rng):
        loss = SoftmaxCrossEntropy()
        logits = rng.normal(size=(3, 3))
        soft = rng.dirichlet(np.ones(3), size=3)
        value = loss.forward(logits, soft)
        assert np.isfinite(value) and value > 0

    def test_soft_targets_renormalized(self, rng):
        loss = SoftmaxCrossEntropy()
        logits = rng.normal(size=(2, 3))
        targets = np.array([[2.0, 0.0, 0.0], [0.0, 4.0, 0.0]])
        hard = loss.forward(logits, np.array([0, 1]))
        scaled = loss.forward(logits, targets)
        assert scaled == pytest.approx(hard)

    def test_label_smoothing_increases_confident_loss(self):
        logits = np.array([[50.0, 0.0, 0.0]])
        plain = SoftmaxCrossEntropy().forward(logits, np.array([0]))
        smoothed = SoftmaxCrossEntropy(label_smoothing=0.1).forward(
            logits, np.array([0])
        )
        assert smoothed > plain

    def test_out_of_range_targets_raise(self):
        loss = SoftmaxCrossEntropy()
        with pytest.raises(ValueError):
            loss.forward(np.zeros((2, 3)), np.array([0, 3]))

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            SoftmaxCrossEntropy().backward()

    def test_invalid_smoothing_raises(self):
        with pytest.raises(ValueError):
            SoftmaxCrossEntropy(label_smoothing=1.0)


class TestMeanSquaredError:
    def test_zero_for_exact(self, rng):
        loss = MeanSquaredError()
        x = rng.normal(size=(4, 2))
        assert loss.forward(x, x.copy()) == pytest.approx(0.0)

    def test_known_value(self):
        loss = MeanSquaredError()
        value = loss.forward(np.array([[1.0, 2.0]]), np.array([[0.0, 0.0]]))
        assert value == pytest.approx(2.5)

    def test_gradient(self, rng):
        loss = MeanSquaredError()
        pred = rng.normal(size=(3, 2))
        target = rng.normal(size=(3, 2))
        loss.forward(pred, target)
        np.testing.assert_allclose(
            loss.backward(), 2 * (pred - target) / pred.size
        )

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            MeanSquaredError().forward(np.zeros((2, 2)), np.zeros((2, 3)))
