"""Tests for the extended layer set: AvgPool2D, GlobalAveragePool,
Sigmoid, Tanh — including numerical gradient checks."""

import numpy as np
import pytest

from repro.nn.layers import AvgPool2D, GlobalAveragePool, Sigmoid, Tanh
from tests.test_nn_layers import check_input_gradient


class TestAvgPool2D:
    def test_forward_values(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = AvgPool2D(2).forward(x)
        np.testing.assert_allclose(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_input_gradient(self, rng):
        check_input_gradient(AvgPool2D(2), rng.normal(size=(2, 3, 4, 4)))

    def test_gradient_spreads_uniformly(self):
        layer = AvgPool2D(2)
        x = np.ones((1, 1, 2, 2))
        layer.forward(x, training=True)
        grad = layer.backward(np.array([[[[4.0]]]]))
        np.testing.assert_allclose(grad, 1.0)

    def test_indivisible_raises(self):
        with pytest.raises(ValueError):
            AvgPool2D(3).forward(np.ones((1, 1, 4, 4)))

    def test_invalid_size_raises(self):
        with pytest.raises(ValueError):
            AvgPool2D(0)

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            AvgPool2D(2).backward(np.ones((1, 1, 2, 2)))


class TestGlobalAveragePool:
    def test_forward_shape_and_value(self, rng):
        x = rng.normal(size=(3, 5, 4, 4))
        out = GlobalAveragePool().forward(x)
        assert out.shape == (3, 5)
        np.testing.assert_allclose(out, x.mean(axis=(2, 3)))

    def test_input_gradient(self, rng):
        check_input_gradient(GlobalAveragePool(), rng.normal(size=(2, 3, 4, 4)))

    def test_rejects_non_4d(self, rng):
        with pytest.raises(ValueError):
            GlobalAveragePool().forward(rng.normal(size=(2, 3)))


class TestSigmoid:
    def test_range(self, rng):
        out = Sigmoid().forward(rng.normal(0, 10, size=(5, 5)))
        assert (out > 0).all() and (out < 1).all()

    def test_midpoint(self):
        assert Sigmoid().forward(np.zeros((1, 1)))[0, 0] == pytest.approx(0.5)

    def test_input_gradient(self, rng):
        check_input_gradient(Sigmoid(), rng.normal(size=(3, 4)))

    def test_stable_for_extreme_inputs(self):
        out = Sigmoid().forward(np.array([[-1000.0, 1000.0]]))
        assert np.isfinite(out).all()


class TestTanh:
    def test_range_and_odd_symmetry(self, rng):
        x = rng.normal(size=(4, 4))
        layer = Tanh()
        out = layer.forward(x)
        assert (np.abs(out) < 1).all()
        np.testing.assert_allclose(layer.forward(-x), -out)

    def test_input_gradient(self, rng):
        check_input_gradient(Tanh(), rng.normal(size=(3, 4)))


class TestInModel:
    def test_gap_head_trains(self, rng):
        """A conv + GAP classifier head must train end to end."""
        from repro.nn.layers import Conv2D, Dense, ReLU
        from repro.nn.losses import SoftmaxCrossEntropy
        from repro.nn.model import Sequential
        from repro.nn.optim import Adam
        from repro.nn.trainer import Trainer

        model = Sequential(
            [
                Conv2D(1, 4, kernel=3, rng=rng, pad=1),
                ReLU(),
                GlobalAveragePool(),
                Dense(4, 2, rng),
            ]
        )
        optimizer = Adam(model.params(), model.grads(), lr=0.02)
        trainer = Trainer(model, SoftmaxCrossEntropy(), optimizer, rng)
        # Bright vs dark images: a trivially learnable task.
        x = np.concatenate(
            [rng.uniform(0.7, 1.0, (30, 1, 8, 8)), rng.uniform(0.0, 0.3, (30, 1, 8, 8))]
        )
        y = np.array([0] * 30 + [1] * 30)
        history = trainer.fit(x, y, epochs=20)
        assert history.train_accuracy[-1] > 0.9
