"""Tests for repro.data.archetypes — the AI failure cases of Figure 1."""

import numpy as np

from repro.data.archetypes import (
    ARCHETYPE_MAKERS,
    make_closeup,
    make_fake,
    make_implicit,
    make_low_resolution,
    make_regular,
)
from repro.data.metadata import DamageLabel, FailureArchetype


class TestRegular:
    def test_apparent_equals_true(self, rng):
        _, meta = make_regular(0, DamageLabel.MODERATE, rng)
        assert meta.apparent_label == meta.true_label
        assert meta.archetype is FailureArchetype.NONE
        assert not meta.is_deceptive


class TestFake:
    def test_pixels_look_severe_truth_is_none(self, rng):
        pixels, meta = make_fake(1, DamageLabel.NO_DAMAGE, rng)
        assert meta.true_label is DamageLabel.NO_DAMAGE
        assert meta.apparent_label is DamageLabel.SEVERE
        assert meta.is_fake
        assert meta.is_deceptive
        assert pixels.shape == (32, 32, 3)

    def test_statistically_indistinguishable_from_severe(self, rng):
        """Innate-failure premise: no pixel cue separates fakes from severe."""
        def energy(img):
            gray = img.mean(axis=2)
            return np.abs(np.diff(gray, axis=0)).mean()

        fakes = [energy(make_fake(i, DamageLabel.NO_DAMAGE, rng)[0]) for i in range(40)]
        severes = [
            energy(make_regular(i, DamageLabel.SEVERE, rng)[0]) for i in range(40)
        ]
        # Means within each other's spread: same rendering distribution.
        assert abs(np.mean(fakes) - np.mean(severes)) < 2 * np.std(severes)


class TestCloseup:
    def test_labels(self, rng):
        _, meta = make_closeup(2, DamageLabel.NO_DAMAGE, rng)
        assert meta.true_label is DamageLabel.NO_DAMAGE
        assert meta.apparent_label is DamageLabel.SEVERE
        assert not meta.is_fake
        assert meta.is_deceptive


class TestLowResolution:
    def test_label_preserved(self, rng):
        _, meta = make_low_resolution(3, DamageLabel.MODERATE, rng)
        assert meta.true_label is DamageLabel.MODERATE
        assert meta.apparent_label is DamageLabel.MODERATE
        assert not meta.is_deceptive

    def test_pixels_are_blocky(self, rng):
        pixels, _ = make_low_resolution(4, DamageLabel.SEVERE, rng)
        # 8x8 blocks: within-block variance is only the added noise.
        block = pixels[:8, :8, 0]
        full = pixels[:, :, 0]
        assert block.std() < full.std()

    def test_degrades_high_frequency_content(self, rng):
        def hf_energy(img):
            gray = img.mean(axis=2)
            return np.abs(np.diff(gray, axis=1)).mean()

        sharp = np.mean(
            [hf_energy(make_regular(i, DamageLabel.SEVERE, rng)[0]) for i in range(20)]
        )
        # Low-res keeps only noise-level high frequencies inside blocks.
        blurred = np.mean(
            [
                hf_energy(make_low_resolution(i, DamageLabel.SEVERE, rng)[0])
                for i in range(20)
            ]
        )
        assert blurred < sharp


class TestImplicit:
    def test_labels(self, rng):
        _, meta = make_implicit(5, DamageLabel.SEVERE, rng)
        assert meta.true_label is DamageLabel.SEVERE
        assert meta.apparent_label is DamageLabel.NO_DAMAGE
        assert meta.people_in_danger
        assert meta.is_deceptive


class TestMakers:
    def test_registry_covers_all_archetypes(self):
        assert set(ARCHETYPE_MAKERS) == set(FailureArchetype)

    def test_all_makers_produce_valid_output(self, rng):
        for i, (archetype, maker) in enumerate(ARCHETYPE_MAKERS.items()):
            pixels, meta = maker(i, DamageLabel.SEVERE, rng)
            assert meta.archetype is archetype
            assert pixels.min() >= 0.0 and pixels.max() <= 1.0
            assert meta.image_id == i
