"""Tests for the command-line interface (fast deployments only)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        for command in (
            "run", "pilot", "table1", "table2", "fig8", "fig9",
            "budget", "chaos", "diagnose", "trace", "bench", "supervise",
        ):
            argv = [command, "--seed", "5"]
            if command == "supervise":
                argv += ["--checkpoint", "c.ckpt", "--journal", "c.journal"]
            args = parser.parse_args(argv)
            assert args.seed == 5
            assert callable(args.func)

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nope"])

    def test_full_flag(self):
        args = build_parser().parse_args(["run", "--full"])
        assert args.full is True

    def test_run_durable_flags(self):
        args = build_parser().parse_args([
            "run", "--checkpoint", "c.ckpt", "--journal", "c.journal",
            "--resume", "--cycles", "3", "--crash-at", "cqc:1:0:kill",
            "--crash-at", "post:2", "--fsync", "rotate",
            "--digest-file", "d.txt", "--checkpoint-every", "2",
        ])
        assert args.resume is True
        assert args.cycles == 3
        assert args.crash_at == ["cqc:1:0:kill", "post:2"]
        assert args.fsync == "rotate"
        assert args.checkpoint_every == 2

    def test_supervise_requires_journal_and_checkpoint(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["supervise"])

    def test_chaos_crash_flag(self):
        args = build_parser().parse_args(["chaos", "--crash"])
        assert args.crash is True

    def test_serve_and_loadgen_registered(self):
        parser = build_parser()
        for command in ("serve", "loadgen"):
            args = parser.parse_args([command, "--seed", "5"])
            assert args.seed == 5
            assert callable(args.func)

    def test_serve_flags(self):
        args = build_parser().parse_args([
            "serve", "--events", "4", "--capacity", "6",
            "--policy", "deadline", "--max-backlog", "2",
            "--serve-dir", "fleet", "--resume", "--fsync", "rotate",
            "--crash-at-tick", "9", "--digest-file", "d.txt",
        ])
        assert args.events == 4
        assert args.capacity == 6
        assert args.policy == "deadline"
        assert args.max_backlog == 2
        assert args.serve_dir == "fleet"
        assert args.resume is True
        assert args.fsync == "rotate"
        assert args.crash_at_tick == 9
        assert args.digest_file == "d.txt"

    def test_loadgen_flags(self):
        args = build_parser().parse_args([
            "loadgen", "--events", "2", "--policy", "priority",
            "--burst-images", "20", "--burst-seed", "7",
            "--output", "out.json", "--check", "--p99-gate", "2.5",
        ])
        assert args.events == 2
        assert args.policy == "priority"
        assert args.burst_images == 20
        assert args.burst_seed == 7
        assert args.output == "out.json"
        assert args.check is True
        assert args.p99_gate == 2.5

    def test_unknown_admission_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--policy", "round-robin"])


class TestCommands:
    """Each command runs end-to-end on the fast deployment."""

    def test_run(self, capsys):
        assert main(["run", "--seed", "61"]) == 0
        out = capsys.readouterr().out
        assert "CrowdLearn:" in out
        assert "crowd delay" in out

    def test_pilot(self, capsys):
        assert main(["pilot", "--seed", "61"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out and "Figure 6" in out

    def test_table1(self, capsys):
        assert main(["table1", "--seed", "61"]) == 0
        assert "Table I" in capsys.readouterr().out

    def test_fig8(self, capsys):
        assert main(["fig8", "--seed", "61"]) == 0
        assert "Figure 8" in capsys.readouterr().out

    def test_chaos(self, capsys):
        assert main(["chaos", "--seed", "61"]) == 0
        out = capsys.readouterr().out
        assert "fault intensity" in out
        assert "CrowdLearn-naive" in out

    def test_diagnose(self, capsys):
        assert main(["diagnose", "--seed", "61"]) == 0
        out = capsys.readouterr().out
        assert "Failure report: VGG16" in out
        assert "Failure report: DDM" in out

    def test_trace(self, capsys, tmp_path):
        jsonl = tmp_path / "trace.jsonl"
        prom = tmp_path / "metrics.prom"
        assert main([
            "trace", "--seed", "61",
            "--jsonl", str(jsonl), "--prometheus", str(prom),
        ]) == 0
        out = capsys.readouterr().out
        assert "per-stage wall time" in out
        assert "cycle.qss" in out
        assert "cycle.mic.retrain" in out
        assert "crowd spend (cents)" in out

        from repro.telemetry import read_jsonl

        parsed = read_jsonl(jsonl)
        assert any(s.name == "cycle" for s in parsed["spans"])
        assert "queries_posted_total" in prom.read_text()

    def test_trace_leaves_process_default_clean(self):
        from repro.telemetry import NULL_TELEMETRY, get_telemetry

        assert main(["trace", "--seed", "61"]) == 0
        assert get_telemetry() is NULL_TELEMETRY

    def test_bench(self, capsys, tmp_path):
        import json

        artifact = tmp_path / "BENCH_cycle.json"
        assert main([
            "bench", "--seed", "61", "--check",
            "--output", str(artifact), "--repeats", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "closed loop:" in out
        assert "committee vote" in out
        report = json.loads(artifact.read_text())
        assert report["loop"]["cycles"] > 0
        assert "cycle.committee" in report["loop"]["stages"]
        vote = report["committee_vote"]
        assert vote["cached_best_seconds"] <= vote["uncached_best_seconds"]

    def test_bench_rejects_fast_and_full(self, capsys):
        assert main(["bench", "--fast", "--full"]) == 2

    def test_run_resume_requires_paths(self, capsys):
        assert main(["run", "--resume", "--seed", "61"]) == 2
        assert "--resume requires" in capsys.readouterr().err

    def test_run_crash_at_requires_journal(self, capsys):
        assert main(["run", "--crash-at", "cqc:0", "--seed", "61"]) == 2
        assert "--crash-at requires --journal" in capsys.readouterr().err

    def test_run_resume_corrupt_checkpoint_exits_3(self, tmp_path, capsys):
        ckpt = tmp_path / "c.ckpt"
        ckpt.write_bytes(b"garbage")
        assert main([
            "run", "--seed", "61", "--resume",
            "--checkpoint", str(ckpt),
            "--journal", str(tmp_path / "c.journal"),
        ]) == 3
        err = capsys.readouterr().err
        assert "corrupt checkpoint" in err
        assert "format check failed" in err

    def test_serve_resume_requires_dir(self, capsys):
        assert main(["serve", "--resume", "--seed", "61"]) == 2
        assert "--resume requires --serve-dir" in capsys.readouterr().err

    def test_loadgen_resume_requires_dir(self, capsys):
        assert main(["loadgen", "--resume", "--seed", "61"]) == 2
        assert "--resume requires --serve-dir" in capsys.readouterr().err

    def test_serve(self, capsys, tmp_path):
        digest_file = tmp_path / "digest.txt"
        assert main([
            "serve", "--seed", "61", "--events", "1",
            "--digest-file", str(digest_file),
        ]) == 0
        out = capsys.readouterr().out
        assert "event-01: F1" in out
        assert "serve digest" in out
        assert len(digest_file.read_text().strip()) == 64

    def test_loadgen(self, capsys, tmp_path):
        out_path = tmp_path / "BENCH_serve.json"
        assert main([
            "loadgen", "--seed", "61", "--events", "2",
            "--output", str(out_path), "--check",
        ]) == 0
        captured = capsys.readouterr()
        assert "serve loadgen" in captured.out
        assert "loadgen check passed" in captured.err
        import json

        report = json.loads(out_path.read_text())
        assert report["pool"]["conserved"]
        assert report["service"]["drained"]

    def test_chaos_workers(self, capsys):
        assert main(["chaos", "--seed", "61", "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "chaos-arm-0.00" in out
        assert "macro-F1" in out
