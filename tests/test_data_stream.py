"""Tests for repro.data.stream."""

import numpy as np
import pytest

from repro.data.stream import SensingCycleStream
from repro.utils.clock import TemporalContext


@pytest.fixture
def stream(small_dataset, rng):
    return SensingCycleStream(
        small_dataset,
        n_cycles=8,
        images_per_cycle=5,
        cycles_per_context=2,
        rng=rng,
    )


class TestSensingCycleStream:
    def test_length(self, stream):
        assert len(stream) == 8

    def test_cycle_sizes(self, stream):
        for cycle in stream:
            assert len(cycle) == 5

    def test_contexts_in_paper_order(self, stream):
        contexts = [cycle.context for cycle in stream]
        expected = [
            TemporalContext.MORNING,
            TemporalContext.MORNING,
            TemporalContext.AFTERNOON,
            TemporalContext.AFTERNOON,
            TemporalContext.EVENING,
            TemporalContext.EVENING,
            TemporalContext.MIDNIGHT,
            TemporalContext.MIDNIGHT,
        ]
        assert contexts == expected

    def test_context_wraps_past_four_blocks(self, small_dataset, rng):
        stream = SensingCycleStream(
            small_dataset,
            n_cycles=10,
            images_per_cycle=2,
            cycles_per_context=2,
            rng=rng,
        )
        assert stream.context_of_cycle(8) is TemporalContext.MORNING

    def test_no_image_repeats(self, stream):
        seen = set()
        for cycle in stream:
            for image in cycle.images:
                assert image.image_id not in seen
                seen.add(image.image_id)

    def test_cycle_indexing_matches_iteration(self, stream):
        for i, cycle in enumerate(stream):
            assert cycle.index == i
            direct = stream.cycle(i)
            assert [img.image_id for img in direct.images] == [
                img.image_id for img in cycle.images
            ]

    def test_all_images_dataset(self, stream):
        dataset = stream.all_images()
        assert len(dataset) == 40

    def test_cycle_dataset_conversion(self, stream):
        cycle = stream.cycle(0)
        dataset = cycle.dataset()
        assert len(dataset) == 5

    def test_insufficient_test_set_raises(self, small_dataset, rng):
        with pytest.raises(ValueError):
            SensingCycleStream(
                small_dataset, n_cycles=100, images_per_cycle=10, rng=rng
            )

    def test_out_of_range_cycle_raises(self, stream):
        with pytest.raises(IndexError):
            stream.cycle(8)

    def test_invalid_sizes_raise(self, small_dataset, rng):
        with pytest.raises(ValueError):
            SensingCycleStream(small_dataset, n_cycles=0, rng=rng)

    def test_shuffled_by_rng(self, small_dataset):
        a = SensingCycleStream(
            small_dataset, n_cycles=4, images_per_cycle=5,
            rng=np.random.default_rng(1),
        )
        b = SensingCycleStream(
            small_dataset, n_cycles=4, images_per_cycle=5,
            rng=np.random.default_rng(2),
        )
        ids_a = [img.image_id for img in a.all_images()]
        ids_b = [img.image_id for img in b.all_images()]
        assert ids_a != ids_b
