"""Service-level resilience tests: bulkheads, breakers, blast radius.

The contract under test (docs/SERVING.md): one faulted event never takes
the fleet down.  A tick that raises is caught by the bulkhead and parks
only its own event; a platform outage scoped to one event walks that
event down the degradation ladder into quarantine while every healthy
event's digest stays byte-identical to a no-fault run; the shared pool's
books stay conserved through release and re-water-fill; and the whole
drill survives a SIGKILL mid-quarantine plus a CLI resume.
"""

import asyncio
import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.eval.runner import prepare
from repro.serve import (
    AsyncCrowdLearnService,
    CrowdLearnService,
    SharedCrowdPool,
    create_admission_policy,
    loadgen,
)


@pytest.fixture(scope="module")
def setup():
    return prepare(seed=21, fast=True)


def poison(service, event_id):
    """Make one event's next tick raise mid-cycle (a bulkhead trip)."""
    deployment = service.registry.get(event_id)

    def boom(grant):
        raise RuntimeError("poisoned cycle")

    deployment.run_next_cycle = boom
    return deployment


class TestBulkhead:
    @pytest.fixture(scope="class")
    def clean_digests(self, setup):
        service = CrowdLearnService(setup)
        for event_id in ("a", "b", "c"):
            service.submit_event(event_id)
        service.drain()
        return service.digests()

    def test_poison_tick_quarantines_only_that_event(
        self, setup, clean_digests
    ):
        service = CrowdLearnService(setup)
        for event_id in ("a", "b", "c"):
            service.submit_event(event_id)
        poison(service, "b")
        service.drain()

        assert service.quarantined_events() == ["b"]
        health = service.health["b"]
        assert health.state == "quarantined"
        assert "RuntimeError" in health.quarantine_reason
        # A bulkhead trip is terminal: dirty mid-cycle state never probes.
        assert health.breaker.probe_window() is None
        # The survivors drained untouched, byte for byte.
        for event_id in ("a", "c"):
            assert service.registry.get(event_id).done
            assert service.digests()[event_id] == clean_digests[event_id]
        assert service.pool.conserved()

    def test_bulkhead_releases_grant_into_metered_books(self, setup):
        pool = SharedCrowdPool(
            capacity_per_cycle=4,
            policy=create_admission_policy("fair-share"),
            max_backlog=3,
        )
        service = CrowdLearnService(setup, pool=pool)
        for event_id in ("a", "b", "c"):
            service.submit_event(event_id)
        poison(service, "b")
        service.drain()

        assert service.quarantined_events() == ["b"]
        assert all(
            service.registry.get(event_id).done for event_id in ("a", "c")
        )
        totals = service.pool.totals()
        assert totals["quarantined"] > 0  # the tripped grant was released
        assert service.pool.conserved()
        assert service.pool.ledger("b").conserved()

    def test_async_drain_surfaces_quarantine_as_outcome(self, setup):
        async def drive():
            inner = CrowdLearnService(setup)
            service = AsyncCrowdLearnService(inner)
            await service.submit_event("a")
            await service.submit_event("b")
            poison(inner, "b")
            return await service.drain()

        outcome = asyncio.run(drive())
        assert not outcome.clean
        assert outcome.drained == ("a",)
        assert set(outcome.quarantined) == {"b"}
        assert "RuntimeError" in outcome.quarantined["b"]

    def test_quarantine_record_embeds_wal_post_mortem(self, setup, tmp_path):
        serve_dir = tmp_path / "fleet"
        service = CrowdLearnService(setup, serve_dir=serve_dir)
        service.submit_event("a")
        service.submit_event("b")
        service.step()  # one clean tick each, so b's WAL has rotated
        service.step()
        poison(service, "b")
        service.drain()
        service.close()

        records = [
            json.loads(line)["record"]
            for line in (serve_dir / "serve.journal").read_text().splitlines()
        ]
        quarantines = [r for r in records if r["kind"] == "quarantine"]
        assert len(quarantines) == 1
        wal = quarantines[0]["wal"]
        assert wal["exists"] is True
        assert wal["in_doubt_posts"] == 0  # trip hit before any post intent
        assert quarantines[0]["released_budget_cents"] > 0


class TestChaosLadder:
    """The full degradation ladder under an event-scoped outage."""

    @pytest.fixture(scope="class")
    def chaos(self, setup):
        clean = loadgen.reference_digests(
            setup, n_events=3, burst_images=6, burst_seed=2
        )
        faulted = loadgen.faulted_event_id(3)
        service = loadgen.build_service(
            setup,
            n_events=3,
            unmetered=True,
            fault_plans={faulted: loadgen.chaos_plan()},
        )
        loadgen.drive(service, burst_images=6, burst_seed=2)
        report = loadgen.build_report(
            service,
            1.0,
            {
                "bench": "serve-loadgen",
                "n_events": 3,
                "capacity_per_cycle": service.pool.capacity_per_cycle,
                "policy": "fair-share",
                "chaos": True,
                "faulted_event": faulted,
            },
            clean_digests=clean,
        )
        yield service, report, faulted
        service.close()

    def test_blast_radius_is_contained(self, chaos):
        service, report, faulted = chaos
        assert loadgen.check_report(report) == []
        section = report["chaos"]
        assert section["blast_radius_contained"]
        assert section["quarantined"] == [faulted]
        assert all(section["healthy_parity"].values())
        assert report["pool"]["conserved"]

    def test_ladder_walked_every_rung(self, chaos):
        service, report, faulted = chaos
        health = service.health[faulted]
        assert health.state == "quarantined"
        breaker = health.breaker
        assert breaker.state == "open"
        assert breaker.opened_total >= 1
        assert breaker.half_open_total >= 1  # recovery was attempted
        assert breaker.probe_window() is None  # ...and its budget spent
        grants = service.registry.get(faulted).grants
        full = grants[0]
        assert full > 0
        assert any(0 < g < full for g in grants)  # DEGRADED reduced batch
        assert 0 in grants  # BROWNOUT committee-only windows
        assert "probe" in report["chaos"]["quarantine_reasons"][faulted]

    def test_render_mentions_the_drill(self, chaos):
        _, report, _ = chaos
        rendered = loadgen.render_report(report)
        assert "[QUARANTINED]" in rendered
        assert "blast radius contained" in rendered

    def test_metered_chaos_keeps_books_conserved(self, setup):
        """Under a metered pool parity is off the table (freed capacity
        re-enters the water-fill), but conservation never is."""
        faulted = loadgen.faulted_event_id(3)
        service = loadgen.build_service(
            setup,
            n_events=3,
            max_backlog=2,
            fault_plans={faulted: loadgen.chaos_plan()},
        )
        loadgen.drive(service, burst_images=6, burst_seed=2)
        assert service.quarantined_events() == [faulted]
        assert all(
            d.done for d in service.registry.all()
            if d.event_id != faulted
        )
        totals = service.pool.totals()
        assert totals["quarantined"] > 0
        assert service.pool.conserved()
        for ledger in service.pool.ledgers.values():
            assert ledger.conserved()


class TestChaosSubprocess:
    """SIGKILL mid-quarantine, CLI resume, and the exit-code contract."""

    def _repro(self, tmp_path, *argv):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(__file__).resolve().parents[1] / "src")
        return subprocess.run(
            [sys.executable, "-m", "repro", *argv],
            env=env,
            capture_output=True,
            text=True,
            timeout=600,
        )

    def test_sigkill_mid_quarantine_resume_and_exit_codes(self, tmp_path):
        fleet = str(tmp_path / "fleet")
        bench = str(tmp_path / "bench.json")
        killed = self._repro(
            tmp_path, "loadgen", "--chaos", "--serve-dir", fleet,
            "--output", bench, "--crash-at-tick", "15",
        )
        assert killed.returncode in (-signal.SIGKILL, 128 + signal.SIGKILL)

        resumed = self._repro(
            tmp_path, "loadgen", "--resume", "--serve-dir", fleet,
            "--check", "--output", bench,
        )
        assert resumed.returncode == 0, resumed.stderr
        report = json.loads(Path(bench).read_text())
        assert report["chaos"]["blast_radius_contained"]
        assert report["pool"]["conserved"]

        # Exit code 5: completed, but with quarantined events.
        served = self._repro(
            tmp_path, "serve", "--resume", "--serve-dir", fleet,
        )
        assert served.returncode == 5, served.stderr
        assert "[QUARANTINED]" in served.stdout
        assert "quarantined" in served.stderr
