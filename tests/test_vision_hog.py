"""Tests for repro.vision.hog."""

import numpy as np
import pytest

from repro.vision.hog import gradient_magnitude_orientation, hog_descriptor


class TestGradients:
    def test_flat_image_zero_magnitude(self):
        magnitude, _ = gradient_magnitude_orientation(np.full((8, 8), 0.5))
        np.testing.assert_allclose(magnitude, 0.0)

    def test_vertical_edge_has_horizontal_gradient(self):
        image = np.zeros((8, 8))
        image[:, 4:] = 1.0
        magnitude, orientation = gradient_magnitude_orientation(image)
        # Strongest response at the edge columns.
        assert magnitude[:, 3:5].mean() > magnitude[:, :2].mean()
        # Gradient along x: orientation ~ 0 (mod pi) at the edge.
        edge_orientations = orientation[:, 3]
        np.testing.assert_allclose(edge_orientations % np.pi, 0.0, atol=1e-6)

    def test_horizontal_edge_orientation(self):
        image = np.zeros((8, 8))
        image[4:, :] = 1.0
        magnitude, orientation = gradient_magnitude_orientation(image)
        assert orientation[3, 2] == pytest.approx(np.pi / 2, abs=1e-6)

    def test_rgb_input_converted(self, rng):
        rgb = rng.random((8, 8, 3))
        magnitude, _ = gradient_magnitude_orientation(rgb)
        assert magnitude.shape == (8, 8)

    def test_bad_shape_raises(self):
        with pytest.raises(ValueError):
            gradient_magnitude_orientation(np.zeros((4, 4, 2)))


class TestHogDescriptor:
    def test_output_length(self, rng):
        desc = hog_descriptor(rng.random((32, 32)), cell_size=8, n_bins=9, block_size=2)
        # 4x4 cells -> 3x3 blocks of 2x2 cells x 9 bins.
        assert desc.shape == (3 * 3 * 2 * 2 * 9,)

    def test_blocks_are_l2_normalized(self, rng):
        desc = hog_descriptor(rng.random((16, 16)), cell_size=8, n_bins=9, block_size=1)
        # block_size=1: each block is one 9-bin cell, L2 norm <= 1.
        blocks = desc.reshape(-1, 9)
        norms = np.linalg.norm(blocks, axis=1)
        assert np.all(norms <= 1.0 + 1e-9)

    def test_textured_beats_flat(self, rng):
        flat = hog_descriptor(np.full((32, 32), 0.5))
        textured = hog_descriptor(rng.random((32, 32)))
        assert np.abs(textured).sum() > np.abs(flat).sum()

    def test_invariant_to_brightness_shift(self, rng):
        image = rng.random((32, 32)) * 0.5
        a = hog_descriptor(image)
        b = hog_descriptor(image + 0.3)
        np.testing.assert_allclose(a, b, atol=1e-9)

    def test_indivisible_image_raises(self):
        with pytest.raises(ValueError):
            hog_descriptor(np.zeros((30, 30)), cell_size=8)

    def test_too_small_for_block_raises(self):
        with pytest.raises(ValueError):
            hog_descriptor(np.zeros((8, 8)), cell_size=8, block_size=2)

    def test_invalid_params_raise(self):
        with pytest.raises(ValueError):
            hog_descriptor(np.zeros((16, 16)), cell_size=0)


class TestBatchParity:
    """hog_descriptor_batch must reproduce the per-image path exactly."""

    def test_batch_matches_per_image(self, rng):
        from repro.vision.hog import hog_descriptor_batch

        images = rng.random((7, 32, 32, 3))
        batched = hog_descriptor_batch(images)
        expected = np.stack([hog_descriptor(image) for image in images])
        np.testing.assert_array_equal(batched, expected)

    def test_batch_matches_per_image_grayscale(self, rng):
        from repro.vision.hog import hog_descriptor_batch

        images = rng.random((4, 24, 24))
        batched = hog_descriptor_batch(images, cell_size=4, block_size=3)
        expected = np.stack(
            [hog_descriptor(i, cell_size=4, block_size=3) for i in images]
        )
        np.testing.assert_array_equal(batched, expected)

    def test_batch_gradients_match(self, rng):
        from repro.vision.hog import batch_gradient_magnitude_orientation

        images = rng.random((5, 16, 16))
        magnitudes, orientations = batch_gradient_magnitude_orientation(images)
        for i, image in enumerate(images):
            magnitude, orientation = gradient_magnitude_orientation(image)
            np.testing.assert_array_equal(magnitudes[i], magnitude)
            np.testing.assert_array_equal(orientations[i], orientation)
