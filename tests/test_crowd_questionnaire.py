"""Tests for repro.crowd.questionnaire."""

import numpy as np
import pytest

from repro.crowd.questionnaire import QUESTIONS, encode_query_features, feature_names
from repro.crowd.tasks import (
    CrowdQuery,
    QueryResult,
    QuestionnaireAnswers,
    WorkerResponse,
)
from repro.data.metadata import DamageLabel, SceneType
from repro.utils.clock import TemporalContext


def result_with(labels, fakes=None, scenes=None, dangers=None):
    n = len(labels)
    fakes = fakes or [False] * n
    scenes = scenes or [SceneType.ROAD] * n
    dangers = dangers or [False] * n
    responses = [
        WorkerResponse(
            worker_id=i,
            label=labels[i],
            questionnaire=QuestionnaireAnswers(
                says_fake=fakes[i],
                scene=scenes[i],
                says_people_in_danger=dangers[i],
            ),
            delay_seconds=1.0,
        )
        for i in range(n)
    ]
    return QueryResult(
        query=CrowdQuery(0, 0, 1.0, TemporalContext.MORNING),
        responses=responses,
    )


class TestEncodeQueryFeatures:
    def test_feature_length_matches_names(self):
        result = result_with([DamageLabel.SEVERE] * 5)
        features = encode_query_features(result)
        assert features.shape == (len(feature_names()),)

    def test_label_fractions(self):
        result = result_with(
            [
                DamageLabel.NO_DAMAGE,
                DamageLabel.NO_DAMAGE,
                DamageLabel.SEVERE,
                DamageLabel.MODERATE,
            ]
        )
        features = encode_query_features(result)
        np.testing.assert_allclose(features[:3], [0.5, 0.25, 0.25])

    def test_fake_fraction(self):
        result = result_with(
            [DamageLabel.SEVERE] * 4, fakes=[True, True, False, False]
        )
        features = encode_query_features(result)
        assert features[3] == pytest.approx(0.5)

    def test_scene_fractions_sum_to_one(self):
        result = result_with(
            [DamageLabel.SEVERE] * 3,
            scenes=[SceneType.ROAD, SceneType.BRIDGE, SceneType.PEOPLE],
        )
        features = encode_query_features(result)
        assert features[4:9].sum() == pytest.approx(1.0)

    def test_margin_unanimous_is_one(self):
        result = result_with([DamageLabel.SEVERE] * 5)
        features = encode_query_features(result)
        assert features[-1] == pytest.approx(1.0)

    def test_margin_split_is_zero(self):
        result = result_with([DamageLabel.SEVERE, DamageLabel.NO_DAMAGE])
        features = encode_query_features(result)
        assert features[-1] == pytest.approx(0.0)

    def test_empty_result_encodes_as_zeros(self):
        """A starved query (faults, deadlines) is valid input: all zeros."""
        result = QueryResult(query=CrowdQuery(0, 0, 1.0, TemporalContext.MORNING))
        features = encode_query_features(result)
        assert features.shape == (11,)
        assert np.all(features == 0.0)


class TestQuestionnaireDefinition:
    def test_three_fixed_questions(self):
        assert len(QUESTIONS) == 3
        assert any("photoshopped" in q for q in QUESTIONS)

    def test_feature_names_unique(self):
        names = feature_names()
        assert len(names) == len(set(names))
