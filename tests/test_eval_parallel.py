"""Tests for repro.eval.parallel — the multi-arm experiment runner.

The runner's contract is that parallelism is *invisible*: every arm
derives all of its randomness from its own arguments, so a worker-pool
run must return exactly what the serial run returns, in spec order, and
a crashing arm must surface as data rather than take the pool down.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval.parallel import ArmResult, ArmSpec, run_arms, run_chaos_arms
from repro.telemetry.runtime import get_telemetry


def _sum_arm(seed: int, n: int = 8) -> dict:
    """A cheap, fully seed-determined arm that also emits counters."""
    tel = get_telemetry()
    tel.counter("arm_runs_total", help="arm invocations").inc()
    draws = np.random.default_rng(seed).random(n)
    tel.counter("arm_draws_total", help="random draws consumed").inc(n)
    return {"seed": seed, "checksum": float(draws.sum())}


def _failing_arm(message: str) -> None:
    raise RuntimeError(message)


def _specs(seeds=(11, 12, 13, 14)) -> list[ArmSpec]:
    return [
        ArmSpec(name=f"arm-{seed}", runner=_sum_arm, kwargs={"seed": seed})
        for seed in seeds
    ]


class TestArmSpec:
    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            ArmSpec(name="", runner=_sum_arm)

    def test_non_callable_runner_rejected(self):
        with pytest.raises(TypeError):
            ArmSpec(name="arm", runner="not-a-function")

    def test_duplicate_names_rejected(self):
        specs = [
            ArmSpec(name="same", runner=_sum_arm, kwargs={"seed": 1}),
            ArmSpec(name="same", runner=_sum_arm, kwargs={"seed": 2}),
        ]
        with pytest.raises(ValueError):
            run_arms(specs)

    def test_empty_spec_list(self):
        assert run_arms([]) == []


class TestRunArms:
    def test_serial_matches_parallel(self):
        """Worker processes must change nothing but the wall clock."""
        serial = run_arms(_specs(), max_workers=1)
        parallel = run_arms(_specs(), max_workers=2)
        assert serial == parallel
        assert [r.name for r in serial] == [s.name for s in _specs()]
        for result in serial:
            assert result.ok
            assert result.result["checksum"] == pytest.approx(
                float(
                    np.random.default_rng(result.result["seed"]).random(8).sum()
                )
            )

    def test_each_arm_gets_private_telemetry(self):
        """Counters never bleed between arms (or into the caller)."""
        before = get_telemetry().registry.as_dict()
        for result in run_arms(_specs(), max_workers=2):
            assert result.telemetry["arm_runs_total"] == 1
            assert result.telemetry["arm_draws_total"] == 8
        assert get_telemetry().registry.as_dict() == before

    def test_failure_is_data_not_crash(self):
        specs = [
            ArmSpec(name="good", runner=_sum_arm, kwargs={"seed": 5}),
            ArmSpec(
                name="bad", runner=_failing_arm, kwargs={"message": "boom"}
            ),
            ArmSpec(name="also-good", runner=_sum_arm, kwargs={"seed": 6}),
        ]
        for workers in (1, 2):
            results = run_arms(specs, max_workers=workers)
            good, bad, also_good = results
            assert good.ok and also_good.ok
            assert not bad.ok
            assert bad.result is None
            assert "RuntimeError: boom" in bad.error

    def test_ok_property(self):
        assert ArmResult(name="a").ok
        assert not ArmResult(name="a", error="trace").ok


class TestChaosArms:
    def test_four_arm_sweep_parallel_equals_serial(self):
        """The acceptance sweep: 4 chaos intensities, workers vs in-process.

        Every arm rebuilds its world from (seed, intensity) alone, so the
        full per-arm payload — metrics *and* telemetry counters — must be
        identical whichever way the arms are scheduled.
        """
        serial = run_chaos_arms(seed=0, fast=True, max_workers=1)
        parallel = run_chaos_arms(seed=0, fast=True, max_workers=4)
        assert len(serial) == len(parallel) == 4
        assert serial == parallel
        for result in serial:
            assert result.ok, result.error
            assert result.result["cycles_completed"] > 0
        # Higher intensity injects at least as many faults as zero chaos.
        assert (
            serial[-1].result["fault_events"]
            > serial[0].result["fault_events"]
        )
