"""Tests for repro.eval.baselines (fast mode)."""

import numpy as np
import pytest

from repro.core.committee import Committee
from repro.eval.baselines import (
    AIOnlyScheme,
    EnsembleScheme,
    HybridALScheme,
    HybridParaScheme,
)
from repro.eval.runner import prepare
from repro.metrics.classification import accuracy


@pytest.fixture(scope="module")
def setup():
    return prepare(seed=5, fast=True)


class TestAIOnlyScheme:
    def test_result_alignment(self, setup):
        scheme = AIOnlyScheme(setup.base_committee.experts[0])
        result = scheme.run(setup.make_stream("aionly"))
        n = setup.config.n_cycles * setup.config.images_per_cycle
        assert result.y_true.shape == (n,)
        assert result.y_pred.shape == (n,)
        assert result.scores.shape == (n, 3)
        assert result.mean_crowd_delay() is None
        assert result.cost_cents == 0.0

    def test_name_defaults_to_model(self, setup):
        scheme = AIOnlyScheme(setup.base_committee.experts[0])
        assert scheme.name == setup.base_committee.experts[0].name


class TestEnsembleScheme:
    def test_predictions_normalized(self, setup):
        scheme = EnsembleScheme(setup.base_committee.experts, setup.train_set)
        result = scheme.run(setup.make_stream("ens"))
        np.testing.assert_allclose(result.scores.sum(axis=1), 1.0)

    def test_at_least_near_best_member(self, setup):
        stream_name = "ens-cmp"
        ensemble = EnsembleScheme(setup.base_committee.experts, setup.train_set)
        ens_result = ensemble.run(setup.make_stream(stream_name))
        ens_acc = accuracy(ens_result.y_true, ens_result.y_pred)
        member_accs = []
        for expert in setup.base_committee.experts:
            r = AIOnlyScheme(expert).run(setup.make_stream(stream_name))
            member_accs.append(accuracy(r.y_true, r.y_pred))
        assert ens_acc >= max(member_accs) - 0.15

    def test_requires_models(self, setup):
        with pytest.raises(ValueError):
            EnsembleScheme([], setup.train_set)


class TestHybridParaScheme:
    def test_records_crowd_delays(self, setup):
        vgg = setup.base_committee.experts[0]
        scheme = HybridParaScheme(
            model=vgg,
            platform=setup.make_platform("para-test"),
            incentive_cents=8.0,
            queries_per_cycle=2,
            rng=setup.seeds.get("para-test"),
        )
        result = scheme.run(setup.make_stream("para-test"))
        assert len(result.crowd_delays) == setup.config.n_cycles
        assert result.cost_cents == pytest.approx(
            8.0 * 2 * setup.config.n_cycles
        )

    def test_zero_queries_is_pure_ai(self, setup):
        vgg = setup.base_committee.experts[0]
        scheme = HybridParaScheme(
            model=vgg,
            platform=setup.make_platform("para-zero"),
            incentive_cents=8.0,
            queries_per_cycle=0,
            rng=setup.seeds.get("para-zero"),
        )
        result = scheme.run(setup.make_stream("para-zero"))
        assert result.cost_cents == 0.0
        assert not result.crowd_delays

    def test_threshold_one_keeps_all_ai_labels(self, setup):
        vgg = setup.base_committee.experts[0]
        pure = AIOnlyScheme(vgg).run(setup.make_stream("para-thresh"))
        scheme = HybridParaScheme(
            model=vgg,
            platform=setup.make_platform("para-thresh"),
            incentive_cents=8.0,
            queries_per_cycle=3,
            rng=setup.seeds.get("para-thresh"),
            complexity_threshold=1.0,
        )
        result = scheme.run(setup.make_stream("para-thresh"))
        # Normalized entropy < 1 almost surely, so the crowd never overrides.
        assert accuracy(result.y_true, result.y_pred) == pytest.approx(
            accuracy(pure.y_true, pure.y_pred), abs=0.05
        )

    def test_invalid_params_raise(self, setup):
        vgg = setup.base_committee.experts[0]
        platform = setup.make_platform("para-bad")
        rng = setup.seeds.get("para-bad")
        with pytest.raises(ValueError):
            HybridParaScheme(vgg, platform, 0.0, 2, rng)
        with pytest.raises(ValueError):
            HybridParaScheme(vgg, platform, 8.0, -1, rng)
        with pytest.raises(ValueError):
            HybridParaScheme(vgg, platform, 8.0, 2, rng, complexity_threshold=2.0)


class TestHybridALScheme:
    def test_accumulates_pool_and_retrains(self, setup):
        committee = Committee([setup.clone_committee().experts[0]])
        scheme = HybridALScheme(
            committee=committee,
            platform=setup.make_platform("al-test"),
            incentive_cents=8.0,
            queries_per_cycle=2,
            replay_pool=setup.train_set,
            rng=setup.seeds.get("al-test"),
            replay_size=5,
        )
        result = scheme.run(setup.make_stream("al-test"))
        expected_pool = 2 * setup.config.n_cycles
        assert len(scheme._pool_images) == expected_pool
        assert len(result.crowd_delays) == setup.config.n_cycles

    def test_sets_retrain_epochs_to_one(self, setup):
        committee = Committee([setup.clone_committee().experts[0]])
        HybridALScheme(
            committee=committee,
            platform=setup.make_platform("al-epochs"),
            incentive_cents=8.0,
            queries_per_cycle=1,
            replay_pool=setup.train_set,
            rng=setup.seeds.get("al-epochs"),
        )
        assert committee.experts[0].retrain_epochs == 1

    def test_invalid_params_raise(self, setup):
        committee = Committee([setup.clone_committee().experts[0]])
        platform = setup.make_platform("al-bad")
        rng = setup.seeds.get("al-bad")
        with pytest.raises(ValueError):
            HybridALScheme(committee, platform, -1.0, 2, setup.train_set, rng)
