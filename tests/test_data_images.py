"""Tests for repro.data.images — the synthetic scene renderer."""

import numpy as np
import pytest

from repro.data.images import IMAGE_SIZE, render_scene
from repro.data.metadata import DamageLabel, SceneType


def edge_energy(image):
    """Mean absolute finite-difference — a texture/damage proxy."""
    gray = image.mean(axis=2)
    gx = np.abs(np.diff(gray, axis=1)).mean()
    gy = np.abs(np.diff(gray, axis=0)).mean()
    return gx + gy


class TestRenderScene:
    def test_shape_and_range(self, rng):
        image = render_scene(DamageLabel.SEVERE, SceneType.ROAD, rng)
        assert image.shape == (IMAGE_SIZE, IMAGE_SIZE, 3)
        assert image.min() >= 0.0 and image.max() <= 1.0

    def test_custom_size(self, rng):
        image = render_scene(DamageLabel.NO_DAMAGE, SceneType.ROAD, rng, size=16)
        assert image.shape == (16, 16, 3)

    def test_too_small_size_raises(self, rng):
        with pytest.raises(ValueError):
            render_scene(DamageLabel.NO_DAMAGE, SceneType.ROAD, rng, size=4)

    def test_severity_increases_texture(self, rng):
        """The class signal the AI experts learn: texture grows with damage."""
        energies = {}
        for label in DamageLabel:
            energies[label] = np.mean(
                [
                    edge_energy(render_scene(label, SceneType.BUILDING, rng))
                    for _ in range(25)
                ]
            )
        assert (
            energies[DamageLabel.NO_DAMAGE]
            < energies[DamageLabel.MODERATE]
            < energies[DamageLabel.SEVERE]
        )

    def test_classes_overlap_at_boundary(self, rng):
        """Adjacent severities must genuinely overlap (no trivial separation)."""
        moderate = [
            edge_energy(render_scene(DamageLabel.MODERATE, SceneType.ROAD, rng))
            for _ in range(40)
        ]
        severe = [
            edge_energy(render_scene(DamageLabel.SEVERE, SceneType.ROAD, rng))
            for _ in range(40)
        ]
        assert max(moderate) > min(severe)

    def test_images_vary(self, rng):
        a = render_scene(DamageLabel.SEVERE, SceneType.ROAD, rng)
        b = render_scene(DamageLabel.SEVERE, SceneType.ROAD, rng)
        assert not np.allclose(a, b)

    def test_deterministic_given_rng_state(self):
        a = render_scene(
            DamageLabel.MODERATE, SceneType.BRIDGE, np.random.default_rng(3)
        )
        b = render_scene(
            DamageLabel.MODERATE, SceneType.BRIDGE, np.random.default_rng(3)
        )
        np.testing.assert_array_equal(a, b)

    def test_all_scene_types_render(self, rng):
        for scene in SceneType:
            image = render_scene(DamageLabel.MODERATE, scene, rng)
            assert np.isfinite(image).all()

    def test_severe_is_darker_than_intact(self, rng):
        """Dust desaturation dims severe scenes on average."""
        intact = np.mean(
            [
                render_scene(DamageLabel.NO_DAMAGE, SceneType.BUILDING, rng).mean()
                for _ in range(25)
            ]
        )
        severe = np.mean(
            [
                render_scene(DamageLabel.SEVERE, SceneType.BUILDING, rng).mean()
                for _ in range(25)
            ]
        )
        assert severe < intact
