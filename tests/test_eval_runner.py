"""Tests for repro.eval.runner (fast mode)."""

import numpy as np
import pytest

from repro.eval.runner import (
    build_crowdlearn,
    fast_config,
    prepare,
    scheme_result_from_run,
)


@pytest.fixture(scope="module")
def setup():
    return prepare(seed=9, fast=True)


class TestPrepare:
    def test_split_sizes(self, setup):
        assert len(setup.train_set) == 120
        assert len(setup.test_set) == 60

    def test_committee_trained(self, setup):
        probs = setup.base_committee.experts[0].predict_proba(setup.test_set)
        assert probs.shape == (60, 3)

    def test_pilot_complete(self, setup):
        results, labels = setup.pilot.all_labeled_results()
        expected = len(setup.config.incentive_levels) * 4 * 4  # 4 per cell fast
        assert len(results) == expected
        assert len(labels) == expected

    def test_test_set_feeds_stream(self, setup):
        stream = setup.make_stream("check")
        assert len(stream.all_images()) == (
            setup.config.n_cycles * setup.config.images_per_cycle
        )

    def test_rejects_oversized_stream(self):
        from repro.core.config import CrowdLearnConfig

        config = CrowdLearnConfig(n_cycles=400, images_per_cycle=10)
        with pytest.raises(ValueError):
            prepare(seed=0, config=config, n_images=100, n_train=50)

    def test_fixed_incentive_is_budget_over_queries(self, setup):
        config = setup.config
        expected = config.budget_cents / config.total_queries
        assert setup.fixed_incentive_cents() == pytest.approx(expected)


class TestCloneCommittee:
    def test_clone_is_independent(self, setup):
        clone = setup.clone_committee()
        clone.set_weights(np.array([1.0, 0.0, 0.0]))
        np.testing.assert_allclose(setup.base_committee.weights, 1 / 3)

    def test_clone_predicts_identically(self, setup):
        clone = setup.clone_committee()
        a = setup.base_committee.committee_vote(setup.test_set)
        b = clone.committee_vote(setup.test_set)
        np.testing.assert_allclose(a, b)


class TestBuildCrowdlearn:
    def test_uses_shared_pilot(self, setup):
        system = build_crowdlearn(setup)
        assert system.cqc.is_fitted

    def test_custom_config_override(self, setup):
        import dataclasses

        config = dataclasses.replace(setup.config, budget_usd=1.0)
        system = build_crowdlearn(setup, config=config)
        assert system.ledger.total == 100.0


class TestSchemeResultFromRun:
    def test_conversion(self, setup):
        system = build_crowdlearn(setup)
        outcome = system.run(setup.make_stream("convert"))
        result = scheme_result_from_run("CrowdLearn", outcome)
        assert result.name == "CrowdLearn"
        np.testing.assert_array_equal(result.y_true, outcome.y_true())
        assert result.cost_cents == pytest.approx(outcome.total_cost_cents())
        assert len(result.crowd_delays) <= setup.config.n_cycles


class TestFastConfig:
    def test_small_but_valid(self):
        config = fast_config()
        assert config.n_cycles * config.images_per_cycle <= 60
        assert config.total_queries > 0
