"""Tests for repro.crowd.quality — the Figure 6 calibration."""

import pytest

from repro.crowd.delay import INCENTIVE_LEVELS
from repro.crowd.quality import QualityModel


@pytest.fixture
def model():
    return QualityModel()


class TestOffset:
    def test_low_incentives_penalized(self, model):
        assert model.offset(1.0) < -0.1
        assert model.offset(2.0) < 0.0

    def test_plateau_above_four_cents(self, model):
        """Fig 6: no significant quality change between adjacent mid levels."""
        offsets = [model.offset(level) for level in (4.0, 6.0, 8.0, 10.0)]
        assert max(offsets) - min(offsets) < 0.02

    def test_monotone_nondecreasing(self, model):
        offsets = [model.offset(level) for level in INCENTIVE_LEVELS]
        assert all(b >= a - 1e-12 for a, b in zip(offsets, offsets[1:]))

    def test_clamps_out_of_range(self, model):
        assert model.offset(0.5) == pytest.approx(model.offset(1.0))
        assert model.offset(100.0) == pytest.approx(model.offset(20.0))

    def test_nonpositive_raises(self, model):
        with pytest.raises(ValueError):
            model.offset(0.0)


class TestEffectiveAccuracy:
    def test_accuracy_bounds(self, model):
        assert model.effective_accuracy(0.0, 1.0) >= 0.05
        assert model.effective_accuracy(1.0, 20.0) <= 0.98

    def test_reliability_dominates_at_plateau(self, model):
        good = model.effective_accuracy(0.9, 8.0)
        bad = model.effective_accuracy(0.6, 8.0)
        assert good - bad == pytest.approx(0.3, abs=0.01)

    def test_one_cent_depresses_accuracy(self, model):
        plateau = model.effective_accuracy(0.8, 8.0)
        cheap = model.effective_accuracy(0.8, 1.0)
        assert plateau - cheap > 0.1

    def test_invalid_reliability_raises(self, model):
        with pytest.raises(ValueError):
            model.effective_accuracy(1.5, 4.0)
