"""Tests for repro.crowd.pilot."""

import numpy as np
import pytest

from repro.crowd.pilot import run_pilot_study
from repro.utils.clock import TemporalContext

LEVELS = (1.0, 8.0, 20.0)


@pytest.fixture(scope="module")
def pilot(population):
    from repro.crowd.delay import DelayModel
    from repro.crowd.platform import CrowdsourcingPlatform
    from repro.crowd.quality import QualityModel
    from repro.data.dataset import build_dataset

    rng = np.random.default_rng(11)
    platform = CrowdsourcingPlatform(
        population=population,
        delay_model=DelayModel(),
        quality_model=QualityModel(),
        rng=rng,
        workers_per_query=5,
    )
    train = build_dataset(n_images=60, rng=rng)
    return run_pilot_study(
        platform, train, rng, incentive_levels=LEVELS, queries_per_cell=8
    )


class TestPilotStructure:
    def test_all_cells_present(self, pilot):
        assert len(pilot.cells) == len(LEVELS) * 4
        for context in TemporalContext.ordered():
            for level in LEVELS:
                cell = pilot.cell(context, level)
                assert len(cell.results) == 8
                assert len(cell.true_labels) == 8

    def test_each_query_has_five_responses(self, pilot):
        cell = pilot.cell(TemporalContext.MORNING, 8.0)
        assert all(len(r.responses) == 5 for r in cell.results)

    def test_delay_table_shape(self, pilot):
        table = pilot.delay_table()
        assert set(table) == set(TemporalContext.ordered())
        assert all(len(v) == len(LEVELS) for v in table.values())

    def test_quality_table_shape(self, pilot):
        quality = pilot.quality_table()
        assert len(quality) == len(LEVELS)
        assert all(0.0 <= q <= 1.0 for q in quality)

    def test_all_labeled_results_counts(self, pilot):
        results, labels = pilot.all_labeled_results()
        assert len(results) == len(labels) == len(LEVELS) * 4 * 8


class TestPilotShapes:
    def test_morning_delay_decreases_with_incentive(self, pilot):
        delays = pilot.delay_table()[TemporalContext.MORNING]
        assert delays[0] > delays[-1]

    def test_quality_improves_from_one_cent(self, pilot):
        quality = pilot.quality_table()
        assert quality[0] < quality[-1] + 0.05  # 1c is the low point


class TestPilotValidation:
    def test_requires_enough_images(self, platform, rng):
        from repro.data.dataset import build_dataset

        tiny = build_dataset(n_images=5, rng=rng)
        with pytest.raises(ValueError):
            run_pilot_study(platform, tiny, rng, queries_per_cell=10)

    def test_rejects_nonpositive_cell_size(self, platform, small_dataset, rng):
        with pytest.raises(ValueError):
            run_pilot_study(platform, small_dataset, rng, queries_per_cell=0)
