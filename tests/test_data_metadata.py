"""Tests for repro.data.metadata."""

import pytest

from repro.data.metadata import (
    DamageLabel,
    FailureArchetype,
    ImageMetadata,
    SceneType,
)


class TestDamageLabel:
    def test_three_classes(self):
        assert DamageLabel.count() == 3

    def test_severity_ordering(self):
        assert DamageLabel.NO_DAMAGE < DamageLabel.MODERATE < DamageLabel.SEVERE

    def test_int_values(self):
        assert int(DamageLabel.NO_DAMAGE) == 0
        assert int(DamageLabel.SEVERE) == 2


class TestFailureArchetype:
    def test_deceptive_set(self):
        deceptive = FailureArchetype.deceptive()
        assert FailureArchetype.FAKE in deceptive
        assert FailureArchetype.CLOSEUP in deceptive
        assert FailureArchetype.IMPLICIT in deceptive
        assert FailureArchetype.LOW_RESOLUTION not in deceptive
        assert FailureArchetype.NONE not in deceptive


class TestImageMetadata:
    def test_valid_honest(self):
        meta = ImageMetadata(
            image_id=0,
            true_label=DamageLabel.MODERATE,
            archetype=FailureArchetype.NONE,
            scene=SceneType.ROAD,
            is_fake=False,
            people_in_danger=False,
            apparent_label=DamageLabel.MODERATE,
        )
        assert not meta.is_deceptive

    def test_fake_must_set_flag(self):
        with pytest.raises(ValueError):
            ImageMetadata(
                image_id=0,
                true_label=DamageLabel.NO_DAMAGE,
                archetype=FailureArchetype.FAKE,
                scene=SceneType.ROAD,
                is_fake=False,  # inconsistent
                people_in_danger=False,
                apparent_label=DamageLabel.SEVERE,
            )

    def test_non_fake_cannot_set_flag(self):
        with pytest.raises(ValueError):
            ImageMetadata(
                image_id=0,
                true_label=DamageLabel.NO_DAMAGE,
                archetype=FailureArchetype.NONE,
                scene=SceneType.ROAD,
                is_fake=True,
                people_in_danger=False,
                apparent_label=DamageLabel.NO_DAMAGE,
            )

    def test_honest_apparent_must_match_true(self):
        with pytest.raises(ValueError):
            ImageMetadata(
                image_id=0,
                true_label=DamageLabel.NO_DAMAGE,
                archetype=FailureArchetype.NONE,
                scene=SceneType.ROAD,
                is_fake=False,
                people_in_danger=False,
                apparent_label=DamageLabel.SEVERE,
            )

    def test_deceptive_property(self):
        meta = ImageMetadata(
            image_id=0,
            true_label=DamageLabel.SEVERE,
            archetype=FailureArchetype.IMPLICIT,
            scene=SceneType.PEOPLE,
            is_fake=False,
            people_in_danger=True,
            apparent_label=DamageLabel.NO_DAMAGE,
        )
        assert meta.is_deceptive

    def test_frozen(self):
        meta = ImageMetadata(
            image_id=0,
            true_label=DamageLabel.MODERATE,
            archetype=FailureArchetype.NONE,
            scene=SceneType.ROAD,
            is_fake=False,
            people_in_danger=False,
            apparent_label=DamageLabel.MODERATE,
        )
        with pytest.raises(AttributeError):
            meta.image_id = 5
