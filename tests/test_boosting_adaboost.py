"""Tests for repro.boosting.adaboost (ExpertBooster)."""

import numpy as np
import pytest

from repro.boosting.adaboost import ExpertBooster


def make_expert_probs(rng, accuracy, y, n_classes=3):
    """Synthetic expert predictions with the given accuracy."""
    n = len(y)
    probs = np.full((n, n_classes), 0.1 / (n_classes - 1))
    correct = rng.random(n) < accuracy
    predicted = np.where(
        correct, y, (y + rng.integers(1, n_classes, size=n)) % n_classes
    )
    probs[np.arange(n), predicted] = 0.9
    probs /= probs.sum(axis=1, keepdims=True)
    return probs


class TestExpertBooster:
    def test_prefers_accurate_expert(self, rng):
        y = rng.integers(0, 3, size=200)
        good = make_expert_probs(rng, 0.95, y)
        bad = make_expert_probs(rng, 0.4, y)
        booster = ExpertBooster(n_rounds=8).fit([bad, good], y)
        weights = booster.expert_weights(2)
        assert weights[1] > weights[0]

    def test_weights_normalized(self, rng):
        y = rng.integers(0, 3, size=100)
        experts = [make_expert_probs(rng, a, y) for a in (0.9, 0.7, 0.5)]
        booster = ExpertBooster(n_rounds=6).fit(experts, y)
        assert booster.expert_weights(3).sum() == pytest.approx(1.0)

    def test_ensemble_at_least_as_good_as_members_here(self, rng):
        y = rng.integers(0, 3, size=400)
        experts = [make_expert_probs(rng, a, y) for a in (0.85, 0.75, 0.65)]
        booster = ExpertBooster(n_rounds=10).fit(experts, y)
        pred = booster.predict(experts)
        best_single = max(
            np.mean(np.argmax(p, axis=1) == y) for p in experts
        )
        assert np.mean(pred == y) >= best_single - 0.03

    def test_predict_proba_normalized(self, rng):
        y = rng.integers(0, 3, size=50)
        experts = [make_expert_probs(rng, 0.8, y) for _ in range(2)]
        booster = ExpertBooster(n_rounds=4).fit(experts, y)
        probs = booster.predict_proba(experts)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)

    def test_degenerate_case_falls_back_to_best(self, rng):
        # All experts at chance: boosting cannot start, falls back.
        y = rng.integers(0, 3, size=90)
        experts = [make_expert_probs(rng, 1 / 3, y) for _ in range(2)]
        booster = ExpertBooster(n_rounds=5).fit(experts, y)
        assert len(booster.chosen) >= 1
        assert booster.predict(experts).shape == (90,)

    def test_perfect_expert_dominates(self, rng):
        y = rng.integers(0, 3, size=100)
        perfect = np.eye(3)[y] * 0.98 + 0.01
        noisy = make_expert_probs(rng, 0.5, y)
        booster = ExpertBooster(n_rounds=5).fit([noisy, perfect], y)
        assert np.mean(booster.predict([noisy, perfect]) == y) > 0.97

    def test_unfitted_raises(self, rng):
        booster = ExpertBooster()
        with pytest.raises(RuntimeError):
            booster.predict([np.ones((2, 3)) / 3])
        with pytest.raises(RuntimeError):
            booster.expert_weights(1)

    def test_shape_mismatch_raises(self, rng):
        y = np.array([0, 1, 2])
        with pytest.raises(ValueError):
            ExpertBooster().fit([np.ones((2, 3)) / 3], y)

    def test_no_experts_raises(self):
        with pytest.raises(ValueError):
            ExpertBooster().fit([], np.array([0, 1]))

    def test_invalid_params_raise(self):
        with pytest.raises(ValueError):
            ExpertBooster(n_rounds=0)
        with pytest.raises(ValueError):
            ExpertBooster(n_classes=1)
