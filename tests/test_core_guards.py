"""Tests for repro.core.guards (learning-loop guardrails)."""

import pickle

import numpy as np
import pytest

from repro.core.guards import (
    DivergenceSentinel,
    GuardCounters,
    GuardPolicy,
    ModelGuard,
    Snapshot,
    SnapshotChecksumError,
    SnapshotRing,
    get_divergence_sentinel,
    use_divergence_sentinel,
)
from repro.data.dataset import build_dataset
from repro.nn.layers import Dense
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.model import Sequential
from repro.nn.trainer import Trainer


class _StubExpert:
    """Gets the first ``n_correct`` holdout images right, the rest wrong.

    Module-level so snapshot rings can pickle it; carries a weight array so
    rollback bit-identity is checked on real numpy payloads too.
    """

    def __init__(self, name: str, n_correct: int, n_classes: int = 3) -> None:
        self.name = name
        self.n_correct = n_correct
        self.n_classes = n_classes
        self.weights = np.linspace(0.0, 1.0, 7) * (n_correct + 1)

    def predict(self, dataset) -> np.ndarray:
        truth = dataset.labels()
        predicted = truth.copy()
        predicted[self.n_correct:] = (
            truth[self.n_correct:] + 1
        ) % self.n_classes
        return predicted


class _StubCommittee:
    def __init__(self, experts):
        self.experts = experts


class _CorruptingMIC:
    """Retrain stand-in that degrades chosen experts to a new accuracy."""

    def __init__(self, damage: dict):
        self.damage = damage  # expert index -> new n_correct

    def retrain_experts(self, committee, query_images, truthful, pool, rng):
        for m, n_correct in self.damage.items():
            committee.experts[m].n_correct = n_correct
            committee.experts[m].weights = committee.experts[m].weights * 100.0


class _SentinelPokingMIC:
    """Retrain stand-in that acts like a diverging trainer would."""

    def retrain_experts(self, committee, query_images, truthful, pool, rng):
        sentinel = get_divergence_sentinel()
        assert sentinel is not None
        sentinel.aborts += 2
        sentinel.retries += 1
        sentinel.failures += 1


class _ConstantStepOptimizer:
    """Adds ``lr`` to every parameter element on each step (test double)."""

    def __init__(self, params, lr: float):
        self.params = params
        self.lr = lr

    def step(self) -> None:
        for p in self.params:
            p += self.lr


def make_holdout(n: int = 10):
    return build_dataset(n_images=n, rng=np.random.default_rng(3))


def retrain_policy(**overrides) -> GuardPolicy:
    """A policy exercising only the regression gate."""
    defaults = dict(quarantine=False, drift_detector=False, sentinel=False)
    defaults.update(overrides)
    return GuardPolicy(**defaults)


class TestGuardPolicy:
    def test_defaults_enable_everything(self):
        policy = GuardPolicy()
        assert policy.enabled
        assert policy.regression_gate
        assert policy.sentinel
        assert policy.quarantine
        assert policy.drift_detector

    def test_disabled_turns_everything_off(self):
        policy = GuardPolicy.disabled()
        assert not policy.enabled
        assert not policy.regression_gate
        assert not policy.sentinel
        assert not policy.quarantine
        assert not policy.drift_detector

    def test_hardened_is_stricter_than_default(self):
        default, hardened = GuardPolicy(), GuardPolicy.hardened()
        assert hardened.regression_tolerance < default.regression_tolerance
        assert hardened.quarantine_threshold > default.quarantine_threshold
        assert hardened.drift_min_disagreement < default.drift_min_disagreement

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"holdout_size": 0},
            {"regression_tolerance": -0.1},
            {"snapshot_ring_size": 0},
            {"max_update_ratio": 0.0},
            {"lr_backoff_factor": 1.0},
            {"lr_backoff_factor": 0.0},
            {"quarantine_threshold": 0.5, "readmit_threshold": 0.4},
            {"readmit_patience": 0},
            {"accuracy_ewma_alpha": 0.0},
            {"drift_warmup": 0},
            {"drift_sigma": -1.0},
            {"drift_min_disagreement": 1.5},
            {"drift_reliability_floor": -0.2},
        ],
    )
    def test_invalid_knobs_raise(self, kwargs):
        with pytest.raises(ValueError):
            GuardPolicy(**kwargs)


class TestGuardCounters:
    def test_merge_accumulates_every_field(self):
        a = GuardCounters(snapshots=1, rollbacks=2, drift_flags=1)
        b = GuardCounters(snapshots=3, quarantines=1, drift_flags=4)
        assert a.merge(b) is a
        assert a.snapshots == 4
        assert a.rollbacks == 2
        assert a.quarantines == 1
        assert a.drift_flags == 5

    def test_any_ignores_snapshots(self):
        assert not GuardCounters().any()
        assert not GuardCounters(snapshots=5).any()
        assert GuardCounters(rollbacks=1).any()
        assert GuardCounters(offloads_skipped=1).any()

    def test_dict_roundtrip_ignores_unknown_keys(self):
        counters = GuardCounters(rollbacks=2, sentinel_retries=1)
        data = counters.as_dict()
        data["not_a_counter"] = 99
        assert GuardCounters.from_dict(data) == counters


class TestSnapshotRing:
    def test_restore_is_bit_identical(self):
        ring = SnapshotRing(capacity=2)
        payload = {"w": np.linspace(-1, 1, 11), "tag": "x"}
        ring.push(payload, tag="expert[0]")
        restored = ring.restore_latest()
        np.testing.assert_array_equal(restored["w"], payload["w"])
        assert restored["w"].dtype == payload["w"].dtype
        assert restored["tag"] == "x"

    def test_ring_evicts_oldest(self):
        ring = SnapshotRing(capacity=2)
        for value in (1, 2, 3):
            ring.push(value)
        assert len(ring) == 2
        assert ring.restore_latest() == 3

    def test_empty_ring_raises(self):
        with pytest.raises(LookupError):
            SnapshotRing(capacity=1).latest()

    def test_invalid_capacity_raises(self):
        with pytest.raises(ValueError):
            SnapshotRing(capacity=0)

    def test_corrupted_payload_detected(self):
        good = SnapshotRing(capacity=1).push([1, 2, 3], tag="t")
        bad = Snapshot(
            payload=good.payload[:-1] + b"\x00", sha256=good.sha256, tag="t"
        )
        with pytest.raises(SnapshotChecksumError, match="integrity"):
            bad.restore()
        good.verify()  # the untampered snapshot still passes


class TestDivergenceSentinel:
    def test_nonfinite_loss_diverges(self):
        sentinel = DivergenceSentinel()
        params = [np.ones(3)]
        assert sentinel.diverged(float("nan"), params, params)
        assert sentinel.diverged(float("inf"), params, params)

    def test_nonfinite_params_diverge(self):
        sentinel = DivergenceSentinel()
        before = [np.ones(3)]
        after = [np.array([1.0, np.inf, 1.0])]
        assert sentinel.diverged(0.5, before, after)

    def test_update_ratio_threshold(self):
        sentinel = DivergenceSentinel(max_update_ratio=1.0)
        before = [np.ones(4)]  # norm 2
        small = [np.ones(4) + 0.1]
        huge = [np.ones(4) + 2.0]  # update norm 4 > 1.0 * 2
        assert not sentinel.diverged(0.5, before, small)
        assert sentinel.diverged(0.5, before, huge)

    def test_process_default_scoping(self):
        assert get_divergence_sentinel() is None
        sentinel = DivergenceSentinel()
        with use_divergence_sentinel(sentinel):
            assert get_divergence_sentinel() is sentinel
            inner = DivergenceSentinel()
            with use_divergence_sentinel(inner):
                assert get_divergence_sentinel() is inner
            assert get_divergence_sentinel() is sentinel
        assert get_divergence_sentinel() is None


class TestTrainerSentinel:
    """Deterministic divergence via a scripted constant-step optimizer."""

    def make_trainer(self, lr: float, sentinel=None, seed: int = 4):
        rng = np.random.default_rng(seed)
        model = Sequential([Dense(2, 2, rng)])
        for p in model.params():
            p[...] = 1.0  # parameter norm = sqrt(6)
        optimizer = _ConstantStepOptimizer(model.params(), lr=lr)
        trainer = Trainer(
            model, SoftmaxCrossEntropy(), optimizer, rng=rng,
            batch_size=8, sentinel=sentinel,
        )
        x = np.array([[0.0, 1.0], [1.0, 0.0], [0.5, 0.5], [1.0, 1.0]])
        y = np.array([0, 1, 0, 1], dtype=np.int64)
        return trainer, x, y

    def test_retry_at_reduced_lr_succeeds(self):
        # One batch of constant step lr: update norm = lr * sqrt(6).  At
        # lr=1.5 that exceeds max_update_ratio=1 * param norm sqrt(6); the
        # retry at lr=0.75 stays under it.
        sentinel = DivergenceSentinel(max_update_ratio=1.0, lr_backoff_factor=0.5)
        trainer, x, y = self.make_trainer(lr=1.5, sentinel=sentinel)
        history = trainer.fit(x, y, epochs=1)
        assert history.epochs == 1
        assert (sentinel.aborts, sentinel.retries, sentinel.failures) == (1, 1, 0)
        for p in trainer.model.params():
            np.testing.assert_array_equal(p, np.full_like(p, 1.75))
        assert trainer.optimizer.lr == 1.5  # backoff was scoped to the retry

    def test_double_divergence_gives_up_cleanly(self):
        sentinel = DivergenceSentinel(max_update_ratio=1.0, lr_backoff_factor=0.5)
        trainer, x, y = self.make_trainer(lr=10.0, sentinel=sentinel)
        history = trainer.fit(x, y, epochs=3)
        assert history.epochs == 0  # fit stopped, no garbage epoch recorded
        assert (sentinel.aborts, sentinel.retries, sentinel.failures) == (1, 1, 1)
        for p in trainer.model.params():  # last good weights, bit-identical
            np.testing.assert_array_equal(p, np.ones_like(p))

    def test_process_default_sentinel_is_picked_up(self):
        sentinel = DivergenceSentinel(max_update_ratio=1.0, lr_backoff_factor=0.5)
        trainer, x, y = self.make_trainer(lr=10.0)
        with use_divergence_sentinel(sentinel):
            history = trainer.fit(x, y, epochs=1)
        assert history.epochs == 0
        assert sentinel.failures == 1

    def test_disabled_sentinel_is_ignored(self):
        sentinel = DivergenceSentinel(enabled=False, max_update_ratio=1.0)
        trainer, x, y = self.make_trainer(lr=10.0, sentinel=sentinel)
        history = trainer.fit(x, y, epochs=1)
        assert history.epochs == 1  # unguarded: the divergent epoch stands
        assert sentinel.aborts == 0
        for p in trainer.model.params():
            np.testing.assert_array_equal(p, np.full_like(p, 11.0))

    def test_sentinel_run_is_deterministic(self):
        losses = []
        for _ in range(2):
            sentinel = DivergenceSentinel(
                max_update_ratio=1.0, lr_backoff_factor=0.5
            )
            trainer, x, y = self.make_trainer(lr=1.5, sentinel=sentinel)
            history = trainer.fit(x, y, epochs=2)
            losses.append(tuple(history.train_loss))
            assert sentinel.counter_state() == (1, 1, 0)
        assert losses[0] == losses[1]


class TestQuarantine:
    def make_guard(self, n_experts=3, **overrides) -> ModelGuard:
        defaults = dict(
            regression_gate=False,
            sentinel=False,
            drift_detector=False,
            quarantine=True,
            quarantine_threshold=0.3,
            readmit_threshold=0.6,
            readmit_patience=2,
            accuracy_ewma_alpha=1.0,  # EWMA == latest observation
        )
        defaults.update(overrides)
        return ModelGuard(GuardPolicy(**defaults), make_holdout(), n_experts)

    def test_collapse_quarantines_and_masks(self):
        guard = self.make_guard()
        counters = GuardCounters()
        assert guard.active_mask() is None
        guard.observe_member_accuracy(np.array([0.9, 0.1, 0.9]), counters)
        assert counters.quarantines == 1
        np.testing.assert_array_equal(
            guard.active_mask(), [True, False, True]
        )
        np.testing.assert_array_equal(
            guard.quarantined, [False, True, False]
        )

    def test_readmission_needs_sustained_recovery(self):
        guard = self.make_guard()
        counters = GuardCounters()
        guard.observe_member_accuracy(np.array([0.9, 0.1, 0.9]), counters)
        guard.observe_member_accuracy(np.array([0.9, 0.7, 0.9]), counters)
        assert guard.active_mask() is not None  # one good cycle is not enough
        guard.observe_member_accuracy(np.array([0.9, 0.7, 0.9]), counters)
        assert guard.active_mask() is None  # patience=2 reached
        assert counters.readmissions == 1

    def test_recovery_streak_resets_on_relapse(self):
        guard = self.make_guard()
        counters = GuardCounters()
        guard.observe_member_accuracy(np.array([0.9, 0.1, 0.9]), counters)
        guard.observe_member_accuracy(np.array([0.9, 0.7, 0.9]), counters)
        guard.observe_member_accuracy(np.array([0.9, 0.1, 0.9]), counters)  # relapse
        guard.observe_member_accuracy(np.array([0.9, 0.7, 0.9]), counters)
        assert guard.active_mask() is not None  # streak restarted from zero
        guard.observe_member_accuracy(np.array([0.9, 0.7, 0.9]), counters)
        assert guard.active_mask() is None
        assert counters.readmissions == 1

    def test_last_active_member_is_never_quarantined(self):
        guard = self.make_guard()
        counters = GuardCounters()
        guard.observe_member_accuracy(np.array([0.0, 0.0, 0.0]), counters)
        assert counters.quarantines == 2
        assert guard.active_mask().sum() == 1

    def test_ewma_smoothing_delays_the_trigger(self):
        guard = self.make_guard(
            accuracy_ewma_alpha=0.5, quarantine_threshold=0.4,
            readmit_threshold=0.6,
        )
        counters = GuardCounters()
        guard.observe_member_accuracy(np.array([0.9, 1.0, 0.9]), counters)
        guard.observe_member_accuracy(np.array([0.9, 0.0, 0.9]), counters)
        assert counters.quarantines == 0  # EWMA 0.5 still above threshold
        guard.observe_member_accuracy(np.array([0.9, 0.0, 0.9]), counters)
        assert counters.quarantines == 1  # EWMA 0.25 crossed it

    def test_observe_committee_scores_on_holdout(self):
        guard = self.make_guard(accuracy_ewma_alpha=1.0)
        n = len(guard.holdout)
        committee = _StubCommittee(
            [
                _StubExpert("good", n_correct=n),
                _StubExpert("dead", n_correct=0),
                _StubExpert("ok", n_correct=n),
            ]
        )
        counters = GuardCounters()
        guard.observe_committee(committee, counters)
        assert counters.quarantines == 1
        np.testing.assert_array_equal(
            guard.quarantined, [False, True, False]
        )

    def test_wrong_member_count_raises(self):
        guard = self.make_guard(n_experts=3)
        with pytest.raises(ValueError, match="member accuracies"):
            guard.observe_member_accuracy(np.array([1.0, 1.0]), GuardCounters())

    def test_disabled_quarantine_is_inert(self):
        guard = ModelGuard(
            retrain_policy(regression_gate=True), make_holdout(), 2
        )
        counters = GuardCounters()
        guard.observe_member_accuracy(np.array([0.0, 0.0]), counters)
        assert counters.quarantines == 0
        assert guard.active_mask() is None


class TestDriftDetector:
    def make_guard(self, **overrides) -> ModelGuard:
        defaults = dict(
            regression_gate=False,
            sentinel=False,
            quarantine=False,
            drift_detector=True,
            drift_warmup=2,
            drift_sigma=3.0,
            drift_min_disagreement=0.5,
            drift_reliability_floor=0.8,
        )
        defaults.update(overrides)
        return ModelGuard(GuardPolicy(**defaults), make_holdout(), 3)

    @staticmethod
    def agreeing(n=5):
        labels = np.arange(n) % 3
        return labels, labels.copy()

    @staticmethod
    def disagreeing(n=5):
        labels = np.arange(n) % 3
        return labels, (labels + 1) % 3

    def test_no_flags_during_warmup(self):
        guard = self.make_guard()
        counters = GuardCounters()
        consensus, poisoned = self.disagreeing()
        assert not guard.observe_labels(consensus, poisoned, None, counters)
        assert counters.drift_flags == 0

    def test_flags_after_warmup(self):
        guard = self.make_guard()
        counters = GuardCounters()
        for _ in range(2):
            guard.observe_labels(*self.agreeing(), None, counters)
        flagged = guard.observe_labels(*self.disagreeing(), None, counters)
        assert flagged
        assert counters.drift_flags == 1

    def test_trusted_workers_suppress_the_flag(self):
        guard = self.make_guard()
        counters = GuardCounters()
        for _ in range(2):
            guard.observe_labels(*self.agreeing(), None, counters)
        flagged = guard.observe_labels(*self.disagreeing(), 0.95, counters)
        assert not flagged
        assert counters.drift_flags == 0

    def test_flagged_cycles_stay_out_of_history(self):
        guard = self.make_guard()
        counters = GuardCounters()
        for _ in range(2):
            guard.observe_labels(*self.agreeing(), None, counters)
        history_before = list(guard._disagreement_history)
        for _ in range(3):  # poison must not become the new normal
            assert guard.observe_labels(*self.disagreeing(), None, counters)
        assert guard._disagreement_history == history_before
        assert counters.drift_flags == 3

    def test_empty_query_set_never_flags(self):
        guard = self.make_guard()
        empty = np.empty(0, dtype=np.int64)
        assert not guard.observe_labels(empty, empty, None, GuardCounters())

    def test_mismatched_shapes_raise(self):
        guard = self.make_guard()
        with pytest.raises(ValueError, match="align"):
            guard.observe_labels(
                np.zeros(3, dtype=np.int64),
                np.zeros(4, dtype=np.int64),
                None,
                GuardCounters(),
            )

    def test_disabled_detector_never_flags(self):
        guard = ModelGuard(retrain_policy(), make_holdout(), 3)
        counters = GuardCounters()
        for _ in range(5):
            assert not guard.observe_labels(
                *self.disagreeing(), None, counters
            )
        assert counters.drift_flags == 0


class TestGuardedRetrain:
    def make_guard(self, holdout, **overrides) -> ModelGuard:
        return ModelGuard(retrain_policy(**overrides), holdout, 2)

    def test_regression_rolls_back_bit_identically(self):
        holdout = make_holdout(10)
        guard = self.make_guard(holdout, regression_tolerance=0.25)
        experts = [_StubExpert("a", n_correct=8), _StubExpert("b", n_correct=9)]
        committee = _StubCommittee(experts)
        original_payload = pickle.dumps(experts[0].weights)
        counters = GuardCounters()
        guard.guarded_retrain(
            _CorruptingMIC({0: 2}),  # 0.8 -> 0.2, far past the tolerance
            committee,
            [],
            np.empty(0, dtype=np.int64),
            holdout,
            np.random.default_rng(0),
            counters,
        )
        assert counters.snapshots == 2
        assert counters.rollbacks == 1
        assert committee.experts[0].n_correct == 8  # restored incumbent
        assert committee.experts[1].n_correct == 9  # untouched, kept
        # The restored expert's parameters are the snapshot's, bit for bit.
        assert pickle.dumps(committee.experts[0].weights) == original_payload

    def test_regression_within_tolerance_is_kept(self):
        holdout = make_holdout(10)
        guard = self.make_guard(holdout, regression_tolerance=0.25)
        committee = _StubCommittee(
            [_StubExpert("a", n_correct=8), _StubExpert("b", n_correct=9)]
        )
        counters = GuardCounters()
        guard.guarded_retrain(
            _CorruptingMIC({0: 7}),  # 0.8 -> 0.7 is inside the tolerance
            committee,
            [],
            np.empty(0, dtype=np.int64),
            holdout,
            np.random.default_rng(0),
            counters,
        )
        assert counters.rollbacks == 0
        assert committee.experts[0].n_correct == 7

    def test_sentinel_counters_are_drained_per_call(self):
        holdout = make_holdout(10)
        guard = self.make_guard(holdout, sentinel=True, regression_gate=False)
        committee = _StubCommittee(
            [_StubExpert("a", n_correct=8), _StubExpert("b", n_correct=9)]
        )
        for expected in (1, 2):  # deltas, not cumulative totals
            counters = GuardCounters()
            guard.guarded_retrain(
                _SentinelPokingMIC(),
                committee,
                [],
                np.empty(0, dtype=np.int64),
                holdout,
                np.random.default_rng(0),
                counters,
            )
            assert counters.sentinel_aborts == 2
            assert counters.sentinel_retries == 1
            assert counters.sentinel_failures == 1
            assert guard._sentinel.aborts == 2 * expected
        assert get_divergence_sentinel() is None  # default was restored

    def test_expert_count_mismatch_raises(self):
        holdout = make_holdout(10)
        guard = self.make_guard(holdout)
        committee = _StubCommittee([_StubExpert("a", n_correct=5)])
        with pytest.raises(ValueError, match="experts"):
            guard.guarded_retrain(
                _CorruptingMIC({}),
                committee,
                [],
                np.empty(0, dtype=np.int64),
                holdout,
                np.random.default_rng(0),
                GuardCounters(),
            )


class TestModelGuardConstruction:
    def test_build_reserves_holdout_slice(self):
        pool = make_holdout(30)
        policy = GuardPolicy(holdout_size=10)
        guard = ModelGuard.build(policy, pool, 3, np.random.default_rng(1))
        assert len(guard.holdout) == 10
        assert guard.n_experts == 3

    def test_build_caps_holdout_at_pool_size(self):
        pool = make_holdout(6)
        policy = GuardPolicy(holdout_size=100)
        guard = ModelGuard.build(policy, pool, 2, np.random.default_rng(1))
        assert len(guard.holdout) == 6

    def test_build_is_deterministic_given_rng(self):
        pool = make_holdout(30)
        policy = GuardPolicy(holdout_size=8)
        a = ModelGuard.build(policy, pool, 2, np.random.default_rng(9))
        b = ModelGuard.build(policy, pool, 2, np.random.default_rng(9))
        np.testing.assert_array_equal(
            a.holdout.labels(), b.holdout.labels()
        )

    def test_empty_pool_raises(self):
        empty = make_holdout(6).subset([])
        with pytest.raises(ValueError, match="empty golden pool"):
            ModelGuard.build(
                GuardPolicy(), empty, 2, np.random.default_rng(0)
            )

    def test_empty_holdout_with_gate_or_quarantine_raises(self):
        empty = make_holdout(6).subset([])
        with pytest.raises(ValueError, match="holdout"):
            ModelGuard(GuardPolicy(), empty, 2)

    def test_invalid_expert_count_raises(self):
        with pytest.raises(ValueError, match="n_experts"):
            ModelGuard(GuardPolicy(), make_holdout(), 0)

    def test_rebind_resets_per_expert_state(self):
        guard = ModelGuard(GuardPolicy(), make_holdout(), 3)
        counters = GuardCounters()
        guard.observe_member_accuracy(np.array([0.9, 0.0, 0.9]), counters)
        assert guard.active_mask() is not None
        guard.snapshot_ring(0).push("old expert")
        guard.rebind(2)
        assert guard.n_experts == 2
        assert guard.active_mask() is None  # quarantine memory cleared
        assert len(guard.snapshot_ring(0)) == 0  # rings cleared too
        guard.observe_member_accuracy(np.array([0.9, 0.9]), GuardCounters())
        with pytest.raises(ValueError, match="n_experts"):
            guard.rebind(0)

    def test_guard_state_survives_pickle(self):
        guard = ModelGuard(GuardPolicy(), make_holdout(), 2)
        counters = GuardCounters()
        guard.observe_member_accuracy(np.array([0.9, 0.0]), counters)
        restored = pickle.loads(pickle.dumps(guard))
        np.testing.assert_array_equal(
            restored.quarantined, guard.quarantined
        )
        np.testing.assert_array_equal(
            restored.holdout.labels(), guard.holdout.labels()
        )


class _WarmStubExpert(_StubExpert):
    """Versioned _StubExpert whose retrain can corrupt on a chosen call."""

    def __init__(self, name: str, n_correct: int, corrupt_on_call: int | None = None):
        super().__init__(name, n_correct)
        from repro.models.base import next_model_version

        self.model_version = next_model_version()
        self.corrupt_on_call = corrupt_on_call
        self.retrain_epochs_seen = []

    def attach_cache(self, cache) -> None:
        return None

    def retrain(self, dataset, labels, rng, *, epochs=None):
        from repro.models.base import next_model_version

        self.retrain_epochs_seen.append(epochs)
        if len(self.retrain_epochs_seen) == self.corrupt_on_call:
            self.n_correct = 1
            self.weights = self.weights * 100.0
        self.model_version = next_model_version(self.model_version)
        return self


class TestWarmRetrainRollback:
    def test_warm_regression_rolls_back_bit_identically(self):
        """A regressing *warm* retrain restores the incumbent byte for byte.

        The warm-start path shares ``ModelGuard.guarded_retrain`` with the
        cold path, so the regression gate must catch a bad incremental
        fine-tune exactly as it catches a bad full refit.
        """
        from repro.core.committee import Committee
        from repro.core.mic import MachineIntelligenceCalibrator

        holdout = make_holdout(10)
        guard = ModelGuard(
            retrain_policy(regression_tolerance=0.25), holdout, 2
        )
        bad = _WarmStubExpert("a", 8, corrupt_on_call=2)
        good = _WarmStubExpert("b", 9)
        committee = Committee([bad, good])
        mic = MachineIntelligenceCalibrator(
            warm_start=True,
            replay_size=0,
            warm_replay_sample=0,
            full_refit_every=0,
        )
        queries = [holdout[i] for i in range(3)]
        truthful = holdout.labels()[:3]
        rng = np.random.default_rng(0)
        # Retrain 1 is the cold bootstrap (benign); retrain 2 is warm and
        # corrupts expert "a" far past the tolerance.
        guard.guarded_retrain(
            mic, committee, queries, truthful, holdout, rng, GuardCounters()
        )
        incumbent_payload = pickle.dumps(committee.experts[0].weights)
        counters = GuardCounters()
        guard.guarded_retrain(
            mic, committee, queries, truthful, holdout, rng, counters
        )
        assert mic.retrain_stats()["warm_retrains"] == 1
        assert counters.rollbacks == 1
        restored = committee.experts[0]
        assert restored.n_correct == 8
        assert pickle.dumps(restored.weights) == incumbent_payload
        # The kept expert really took the short warm schedule.
        assert committee.experts[1].retrain_epochs_seen == [None, 1]
