"""Tests for repro.bandit.policies (fixed and random incentive policies)."""

import numpy as np
import pytest

from repro.bandit.policies import FixedIncentivePolicy, RandomIncentivePolicy

ARMS = (1.0, 2.0, 4.0, 8.0)


class TestFixedIncentivePolicy:
    def test_defaults_to_most_expensive(self):
        policy = FixedIncentivePolicy(2, ARMS)
        assert policy.select(0) == 3
        assert policy.select(1) == 3

    def test_explicit_arm(self):
        policy = FixedIncentivePolicy(2, ARMS, arm=1)
        assert policy.select(0) == 1

    def test_ignores_context(self):
        policy = FixedIncentivePolicy(4, ARMS, arm=2)
        assert {policy.select(z) for z in range(4)} == {2}

    def test_budget_fallback_to_affordable(self):
        policy = FixedIncentivePolicy(1, ARMS)  # fixed at 8c
        assert policy.select(0, budget_per_round=4.5) == 2  # 4c best affordable

    def test_budget_below_cheapest(self):
        policy = FixedIncentivePolicy(1, ARMS)
        assert policy.select(0, budget_per_round=0.1) == 0

    def test_invalid_arm_raises(self):
        with pytest.raises(IndexError):
            FixedIncentivePolicy(1, ARMS, arm=9)

    def test_update_still_records(self):
        policy = FixedIncentivePolicy(1, ARMS)
        policy.update(0, 3, -1.0)
        assert policy.pull_counts(0)[3] == 1


class TestRandomIncentivePolicy:
    def test_covers_all_arms(self):
        policy = RandomIncentivePolicy(1, ARMS, np.random.default_rng(0))
        picks = {policy.select(0) for _ in range(200)}
        assert picks == {0, 1, 2, 3}

    def test_roughly_uniform(self):
        policy = RandomIncentivePolicy(1, ARMS, np.random.default_rng(1))
        picks = [policy.select(0) for _ in range(2000)]
        counts = np.bincount(picks, minlength=4)
        assert counts.min() > 2000 / 4 * 0.7

    def test_budget_restricts_support(self):
        policy = RandomIncentivePolicy(1, ARMS, np.random.default_rng(2))
        picks = {policy.select(0, budget_per_round=2.5) for _ in range(100)}
        assert picks <= {0, 1}

    def test_budget_below_cheapest_falls_back(self):
        policy = RandomIncentivePolicy(1, ARMS, np.random.default_rng(3))
        assert policy.select(0, budget_per_round=0.01) == 0

    def test_invalid_context_raises(self):
        policy = RandomIncentivePolicy(1, ARMS, np.random.default_rng(4))
        with pytest.raises(IndexError):
            policy.select(3)
