"""Tests for repro.truth.dawid_skene (confusion-matrix truth discovery)."""

import numpy as np
import pytest

from repro.crowd.tasks import (
    CrowdQuery,
    QueryResult,
    QuestionnaireAnswers,
    WorkerResponse,
)
from repro.data.metadata import DamageLabel, SceneType
from repro.truth.dawid_skene import DawidSkene
from repro.utils.clock import TemporalContext


def results_from_confusions(rng, n_queries, confusions, n_classes=3):
    """Queries answered by workers with known confusion matrices."""
    truths = rng.integers(0, n_classes, size=n_queries)
    results = []
    for q in range(n_queries):
        responses = []
        for worker_id, confusion in enumerate(confusions):
            label = int(rng.choice(n_classes, p=confusion[truths[q]]))
            responses.append(
                WorkerResponse(
                    worker_id=worker_id,
                    label=DamageLabel(label),
                    questionnaire=QuestionnaireAnswers(
                        says_fake=False,
                        scene=SceneType.ROAD,
                        says_people_in_danger=False,
                    ),
                    delay_seconds=1.0,
                )
            )
        results.append(
            QueryResult(
                query=CrowdQuery(q, q, 1.0, TemporalContext.MORNING),
                responses=responses,
            )
        )
    return results, truths


def reliable(p=0.9, k=3):
    return np.eye(k) * p + np.full((k, k), (1 - p) / (k - 1)) * (1 - np.eye(k))


def escalator(k=3):
    """A worker who systematically reports moderate damage as severe."""
    confusion = reliable(0.9, k)
    confusion[1] = [0.05, 0.15, 0.80]
    return confusion


class TestDawidSkene:
    def test_recovers_labels(self, rng):
        confusions = [reliable(0.9) for _ in range(5)]
        results, truths = results_from_confusions(rng, 80, confusions)
        labels = DawidSkene().aggregate(results)
        assert np.mean(labels == truths) > 0.9

    def test_learns_systematic_bias(self, rng):
        confusions = [reliable(0.95), reliable(0.95), escalator()]
        results, truths = results_from_confusions(rng, 200, confusions)
        _, matrices = DawidSkene().fit(results)
        # The escalator's estimated matrix must show moderate -> severe mass.
        assert matrices[2][1, 2] > matrices[0][1, 2] + 0.2

    def test_beats_one_coin_model_under_bias(self, rng):
        """Three escalators overwhelm voting and one-coin EM on moderates;
        the confusion-matrix model can undo the systematic shift."""
        confusions = [reliable(0.95), escalator(), escalator(), escalator()]
        results, truths = results_from_confusions(rng, 300, confusions)
        from repro.truth.tdem import TruthDiscoveryEM

        moderates = truths == 1
        if not moderates.any():
            pytest.skip("no moderate samples drawn")
        ds_labels = DawidSkene().aggregate(results)
        em_labels = TruthDiscoveryEM().aggregate(results)
        ds_acc = np.mean(ds_labels[moderates] == 1)
        em_acc = np.mean(em_labels[moderates] == 1)
        assert ds_acc >= em_acc

    def test_posteriors_are_distributions(self, rng):
        confusions = [reliable(0.8) for _ in range(3)]
        results, _ = results_from_confusions(rng, 30, confusions)
        posteriors, matrices = DawidSkene().fit(results)
        np.testing.assert_allclose(posteriors.sum(axis=1), 1.0)
        for matrix in matrices.values():
            np.testing.assert_allclose(matrix.sum(axis=1), 1.0)

    def test_deterministic(self, rng):
        confusions = [reliable(0.85) for _ in range(3)]
        results, _ = results_from_confusions(rng, 40, confusions)
        a = DawidSkene().aggregate(results)
        b = DawidSkene().aggregate(results)
        np.testing.assert_array_equal(a, b)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            DawidSkene().aggregate([])

    def test_works_on_real_platform_output(self, platform, small_dataset):
        results = [
            platform.post_query(img.metadata, 8.0, TemporalContext.EVENING)
            for img in small_dataset.images[:25]
        ]
        labels = DawidSkene().aggregate(results)
        assert labels.shape == (25,)
        assert set(labels.tolist()) <= {0, 1, 2}
