"""System-level tests for the learning-loop guardrails.

Covers the three deployment-shaped guarantees from the guards work:

- a *lenient but enabled* policy (thresholds no real run can cross) is
  byte-identical to a guards-disabled run, so the guarded code path itself
  is side-effect-free;
- a checkpointed deployment with hardened guards under adversarial label
  faults resumes bit-for-bit, guard memory included;
- the paired guard-chaos experiment shows guards-on holding up at least as
  well as guards-off with interventions actually on record.
"""

import numpy as np
import pytest

from repro.core.guards import GuardPolicy
from repro.core.system import CrowdLearnSystem, RunOutcome
from repro.crowd.faults import FaultInjector
from repro.eval.experiments import adversarial_label_plan, run_guard_chaos
from repro.eval.persistence import save_checkpoint
from repro.eval.runner import build_crowdlearn, prepare


def lenient_policy() -> GuardPolicy:
    """Every mechanism on, every threshold impossible to cross.

    Accuracies live in [0, 1] and disagreement rates in [0, 1], so none of
    these bounds can trigger; the run must match a disabled-guards run
    byte for byte.
    """
    return GuardPolicy(
        regression_tolerance=1.0,
        quarantine_threshold=0.0,
        readmit_threshold=0.0,
        drift_min_disagreement=1.0,
        max_update_ratio=1e9,
    )


def assert_runs_equal(a: RunOutcome, b: RunOutcome, guards: bool = True):
    assert len(a.cycles) == len(b.cycles)
    for ca, cb in zip(a.cycles, b.cycles):
        assert ca.cycle_index == cb.cycle_index
        np.testing.assert_array_equal(ca.true_labels, cb.true_labels)
        np.testing.assert_array_equal(ca.final_labels, cb.final_labels)
        np.testing.assert_array_equal(ca.final_scores, cb.final_scores)
        np.testing.assert_array_equal(ca.query_indices, cb.query_indices)
        np.testing.assert_array_equal(
            ca.incentives_cents, cb.incentives_cents
        )
        assert ca.crowd_delay == cb.crowd_delay
        assert ca.cost_cents == cb.cost_cents
        np.testing.assert_array_equal(ca.expert_weights, cb.expert_weights)
        if guards:
            assert ca.guards == cb.guards


@pytest.fixture(scope="module")
def setup():
    return prepare(seed=0, fast=True)


class TestGuardParity:
    def test_lenient_enabled_matches_disabled(self, setup):
        """The guarded code path is inert when no guard ever intervenes.

        Stream, platform and system seeds are shared by name, so the only
        difference between the two runs is whether ``run_cycle`` goes
        through the guard plumbing at all.
        """
        outcomes = {}
        for name, policy in (
            ("lenient", lenient_policy()),
            ("disabled", GuardPolicy.disabled()),
        ):
            system = build_crowdlearn(
                setup, platform_name="guard-parity", guards=policy
            )
            outcomes[name] = system.run(setup.make_stream("guard-parity"))
        totals = outcomes["lenient"].guard_totals()
        assert not totals.any()  # snapshots only, no interventions
        assert totals.snapshots > 0  # ...but the guarded path really ran
        assert_runs_equal(
            outcomes["lenient"], outcomes["disabled"], guards=False
        )


class TestGuardedCheckpointResume:
    def build(self, setup) -> CrowdLearnSystem:
        injector = FaultInjector(
            adversarial_label_plan(),
            rng=setup.seeds.get("guard-resume-faults"),
        )
        return build_crowdlearn(
            setup,
            faults=injector,
            platform_name="guard-resume",
            guards=GuardPolicy.hardened(),
        )

    def test_resume_with_guards_matches_uninterrupted(self, setup, tmp_path):
        """Crash mid-run with live guard state, resume -> identical outcome.

        The hostile plan makes the hardened guards actually intervene, so
        the checkpoint must round-trip snapshot rings, accuracy EWMAs and
        the drift history, not just the committee and RNGs.
        """
        uninterrupted = self.build(setup).run(
            setup.make_stream("guard-resume")
        )
        assert uninterrupted.guard_totals().any()

        path = tmp_path / "guarded.ckpt"
        system = self.build(setup)
        stream = setup.make_stream("guard-resume")
        outcome = RunOutcome()
        k = 3  # crash after three completed cycles
        for t in range(k):
            outcome.append(system.run_cycle(stream.cycle(t)))
        save_checkpoint(path, system, stream, outcome, k)

        resumed = CrowdLearnSystem.resume_from_checkpoint(path)
        assert_runs_equal(resumed, uninterrupted)


class TestGuardChaos:
    @pytest.fixture(scope="class")
    def data(self, setup):
        return run_guard_chaos(setup)

    def test_arms_and_completion(self, data, setup):
        assert data.arms == ("guards-on", "guards-off")
        for arm in data.arms:
            assert data.cycles_completed[arm] == setup.config.n_cycles
            assert 0.0 <= data.f1[arm] <= 1.0
            assert data.fault_events[arm] > 0

    def test_guards_hold_up_under_hostile_labels(self, data):
        """The acceptance bar: guards-on final-half F1 >= guards-off, with
        at least one rollback or quarantine actually recorded."""
        assert data.final_f1["guards-on"] >= data.final_f1["guards-off"]
        assert data.guards["rollbacks"] + data.guards["quarantines"] >= 1

    def test_interventions_bridge_to_telemetry(self, data):
        assert data.telemetry  # guards-on arm ran with a live registry
        for name, value in data.guards.items():
            assert data.telemetry[name] == value

    def test_render_mentions_everything(self, data):
        text = data.render()
        assert "Guard chaos" in text
        assert "guards-on" in text
        assert "guards-off" in text
        assert "final_half_f1" in text
        assert "Guard interventions" in text
