"""Tests for repro.core.resilience and the resilient closed loop."""

import numpy as np
import pytest

from repro.core.resilience import ResilienceCounters, ResiliencePolicy
from repro.crowd.faults import FaultInjector, FaultPlan, PlatformUnavailable
from repro.eval.runner import build_crowdlearn, prepare


@pytest.fixture(scope="module")
def setup():
    return prepare(seed=3, fast=True)


def make_injector(setup, name, **plan_kwargs):
    return FaultInjector(FaultPlan(**plan_kwargs), rng=setup.seeds.get(name))


class TestPolicy:
    def test_defaults_valid(self):
        policy = ResiliencePolicy()
        assert policy.enabled and policy.max_retries == 2

    def test_naive_disables_everything(self):
        policy = ResiliencePolicy.naive()
        assert not policy.enabled
        assert not policy.refund_failed
        assert not policy.fallback_to_committee

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_retries": -1},
            {"backoff_base_seconds": -1.0},
            {"escalation_factor": 0.5},
            {"max_incentive_cents": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ResiliencePolicy(**kwargs)


class TestCounters:
    def test_merge_sums_fields(self):
        a = ResilienceCounters(retries=2, refunded_cents=5.0)
        b = ResilienceCounters(retries=1, fallbacks=3)
        a.merge(b)
        assert a.retries == 3 and a.fallbacks == 3
        assert a.refunded_cents == pytest.approx(5.0)

    def test_any(self):
        assert not ResilienceCounters().any()
        assert ResilienceCounters(dropped_queries=1).any()

    def test_dict_roundtrip_ignores_unknown(self):
        counters = ResilienceCounters(retries=4, outages_hit=2)
        data = counters.as_dict()
        data["not_a_counter"] = 99
        restored = ResilienceCounters.from_dict(data)
        assert restored == counters


class TestFaultFreeParity:
    def test_resilient_equals_naive_without_faults(self, setup):
        """On a clean platform the policies are byte-indistinguishable."""
        outcomes = {}
        for key, policy in (
            ("resilient", None),
            ("naive", ResiliencePolicy.naive()),
        ):
            system = build_crowdlearn(setup, resilience=policy)
            outcomes[key] = system.run(setup.make_stream("parity"))
        a, b = outcomes["resilient"], outcomes["naive"]
        assert len(a.cycles) == len(b.cycles)
        for ca, cb in zip(a.cycles, b.cycles):
            np.testing.assert_array_equal(ca.final_labels, cb.final_labels)
            np.testing.assert_array_equal(ca.final_scores, cb.final_scores)
            np.testing.assert_array_equal(ca.query_indices, cb.query_indices)
            assert ca.crowd_delay == cb.crowd_delay
            assert ca.cost_cents == cb.cost_cents
        assert not a.resilience_totals().any()
        assert not b.resilience_totals().any()


class TestFullAbandonment:
    def test_refunds_and_committee_fallback(self, setup):
        injector = make_injector(setup, "abandon-faults", abandonment_rate=1.0)
        system = build_crowdlearn(
            setup, faults=injector, platform_name="abandon"
        )
        outcome = system.run(setup.make_stream("abandon"))
        totals = outcome.resilience_totals()

        assert len(outcome.cycles) == setup.config.n_cycles  # no crash
        assert totals.fallbacks > 0
        assert totals.refunds == totals.fallbacks
        # Every charge was returned: the deployment cost nothing.
        assert system.ledger.spent == pytest.approx(0.0)
        assert totals.refunded_cents == pytest.approx(
            system.ledger.total_refunded
        )
        assert outcome.total_cost_cents() == pytest.approx(0.0)
        # Nothing was queried, so every label is the committee's.
        for cycle in outcome.cycles:
            assert cycle.query_indices.size == 0
            assert cycle.crowd_delay == 0.0

    def test_naive_crashes_on_empty_responses(self, setup):
        injector = make_injector(
            setup, "abandon-naive-faults", abandonment_rate=1.0
        )
        system = build_crowdlearn(
            setup,
            resilience=ResiliencePolicy.naive(),
            faults=injector,
            platform_name="abandon-naive",
        )
        stream = setup.make_stream("abandon-naive")
        with pytest.raises(ValueError):
            for cycle in stream:
                system.run_cycle(cycle)


class TestOutages:
    def test_retries_recover_short_outage(self, setup):
        injector = make_injector(
            setup, "short-outage-faults", outage_windows=((0, 2),)
        )
        system = build_crowdlearn(
            setup, faults=injector, platform_name="short-outage"
        )
        outcome = system.run(setup.make_stream("short-outage"))
        totals = outcome.resilience_totals()
        assert len(outcome.cycles) == setup.config.n_cycles
        assert totals.retries >= 2  # the two in-window attempts were retried
        assert totals.outages_hit == 2
        assert totals.dropped_queries == 0
        assert totals.backoff_seconds > 0

    def test_long_outage_drops_queries(self, setup):
        injector = make_injector(
            setup, "blackout-faults", outage_windows=((0, 10**9),)
        )
        system = build_crowdlearn(
            setup, faults=injector, platform_name="blackout"
        )
        outcome = system.run(setup.make_stream("blackout"))
        totals = outcome.resilience_totals()
        assert len(outcome.cycles) == setup.config.n_cycles
        assert totals.dropped_queries > 0
        assert system.ledger.spent == 0.0
        # Committee-only labels still cover every image.
        assert outcome.y_pred().shape == outcome.y_true().shape

    def test_naive_propagates_outage(self, setup):
        injector = make_injector(
            setup, "naive-outage-faults", outage_windows=((0, 10**9),)
        )
        system = build_crowdlearn(
            setup,
            resilience=ResiliencePolicy.naive(),
            faults=injector,
            platform_name="naive-outage",
        )
        stream = setup.make_stream("naive-outage")
        with pytest.raises(PlatformUnavailable):
            system.run(stream)


class TestIncentiveEscalation:
    def test_retry_pays_more_up_to_cap(self, setup):
        policy = ResiliencePolicy(
            max_retries=3,
            escalate_incentive=True,
            escalation_factor=2.0,
            max_incentive_cents=12.0,
        )
        injector = make_injector(
            setup, "escalate-faults", outage_windows=((0, 2),)
        )
        system = build_crowdlearn(
            setup,
            resilience=policy,
            faults=injector,
            platform_name="escalate",
        )
        counters = ResilienceCounters()
        dataset = setup.test_set
        from repro.utils.clock import TemporalContext

        result, paid = system._post_with_retries(
            dataset[0].metadata, 5.0, TemporalContext.EVENING, counters
        )
        # Two outage attempts, each doubling the offer: 5 -> 10 -> 12 (cap).
        assert paid == pytest.approx(12.0)
        assert counters.retries == 2
        assert result.query.incentive_cents == pytest.approx(12.0)
