"""Tests for repro.core.system — the assembled CrowdLearn loop (fast mode)."""

import dataclasses

import numpy as np
import pytest

from repro.eval.runner import build_crowdlearn, prepare


@pytest.fixture(scope="module")
def setup():
    return prepare(seed=3, fast=True)


@pytest.fixture(scope="module")
def run_outcome(setup):
    system = build_crowdlearn(setup)
    stream = setup.make_stream("core-system-test")
    return system, system.run(stream)


class TestBuild:
    def test_build_trains_everything(self, setup):
        system = build_crowdlearn(setup)
        assert system.cqc.is_fitted
        assert system.committee.n_experts == 3
        # IPD warm-started: every (context, arm) cell has pilot pulls.
        assert system.ipd.policy.t > 0

    def test_budget_matches_config(self, setup):
        system = build_crowdlearn(setup)
        assert system.ledger.total == setup.config.budget_cents


class TestRunCycle:
    def test_cycle_outcome_shapes(self, run_outcome, setup):
        _, outcome = run_outcome
        config = setup.config
        assert len(outcome.cycles) == config.n_cycles
        for cycle in outcome.cycles:
            n = len(cycle.true_labels)
            assert cycle.final_labels.shape == (n,)
            assert cycle.final_scores.shape == (n, 3)
            assert len(cycle.query_indices) <= config.queries_per_cycle
            np.testing.assert_allclose(cycle.final_scores.sum(axis=1), 1.0)

    def test_offloading_applied_to_queries(self, run_outcome):
        _, outcome = run_outcome
        for cycle in outcome.cycles:
            for local_idx, score_row in zip(
                cycle.query_indices, cycle.final_scores[cycle.query_indices]
            ):
                # Offloaded scores come from CQC distributions (valid rows).
                assert score_row.sum() == pytest.approx(1.0)

    def test_weights_evolve(self, run_outcome):
        _, outcome = run_outcome
        first = outcome.cycles[0].expert_weights
        last = outcome.cycles[-1].expert_weights
        assert not np.allclose(first, last)
        assert last.sum() == pytest.approx(1.0)

    def test_budget_respected(self, run_outcome, setup):
        system, outcome = run_outcome
        assert outcome.total_cost_cents() <= setup.config.budget_cents + 1e-6
        assert system.ledger.spent == pytest.approx(outcome.total_cost_cents())

    def test_delays_recorded(self, run_outcome):
        _, outcome = run_outcome
        assert outcome.mean_crowd_delay() > 0
        by_context = outcome.crowd_delay_by_context()
        assert all(v > 0 for v in by_context.values())


class TestRunOutcomeAggregation:
    def test_aligned_arrays(self, run_outcome, setup):
        _, outcome = run_outcome
        total = setup.config.n_cycles * setup.config.images_per_cycle
        assert outcome.y_true().shape == (total,)
        assert outcome.y_pred().shape == (total,)
        assert outcome.scores().shape == (total, 3)

    def test_beats_prior_accuracy(self, run_outcome):
        _, outcome = run_outcome
        accuracy = float(np.mean(outcome.y_true() == outcome.y_pred()))
        assert accuracy > 0.4  # well above the 1/3 chance floor even in fast mode


class TestZeroQueryFraction:
    def test_pure_ai_mode(self, setup):
        config = dataclasses.replace(setup.config, query_fraction=0.0)
        system = build_crowdlearn(setup, config=config)
        outcome = system.run(setup.make_stream("zero-query"))
        assert outcome.total_cost_cents() == 0.0
        assert outcome.mean_crowd_delay() == 0.0
        for cycle in outcome.cycles:
            assert cycle.query_indices.size == 0


class TestBudgetExhaustion:
    def test_tiny_budget_stops_querying(self, setup):
        config = dataclasses.replace(setup.config, budget_usd=0.05)  # 5 cents
        system = build_crowdlearn(setup, config=config)
        outcome = system.run(setup.make_stream("tiny-budget"))
        assert outcome.total_cost_cents() <= 5.0 + 1e-9
        # The system must keep producing labels even with the budget gone.
        assert outcome.y_pred().shape == outcome.y_true().shape


class TestEmptyRunOutcome:
    """Regression: a run with zero cycles must aggregate, not raise.

    ``np.concatenate([])`` raises ``ValueError``, which used to surface
    from every accessor when e.g. the budget was exhausted before cycle 0
    or a checkpoint was inspected before its first cycle ran.
    """

    def test_empty_labels(self):
        from repro.core.system import RunOutcome

        outcome = RunOutcome()
        assert outcome.y_true().shape == (0,)
        assert outcome.y_true().dtype == np.int64
        assert outcome.y_pred().shape == (0,)
        assert outcome.y_pred().dtype == np.int64

    def test_empty_scores(self):
        from repro.core.system import RunOutcome

        assert RunOutcome().scores().shape == (0, 0)

    def test_empty_outcome_roundtrips_through_metrics(self):
        """The arrays must be concatenable with real cycles' outputs."""
        from repro.core.system import RunOutcome

        outcome = RunOutcome()
        merged = np.concatenate([outcome.y_true(), np.array([1, 2])])
        np.testing.assert_array_equal(merged, [1, 2])
