"""Tests for repro.core.cqc — crowd quality control."""

import numpy as np
import pytest

from repro.core.cqc import CrowdQualityControl
from repro.truth.voting import aggregate_by_voting
from repro.utils.clock import TemporalContext


@pytest.fixture(scope="module")
def labeled_queries(population):
    """Crowd responses on a mixed dataset with golden labels."""
    from repro.crowd.delay import DelayModel
    from repro.crowd.platform import CrowdsourcingPlatform
    from repro.crowd.quality import QualityModel
    from repro.data.dataset import build_dataset

    rng = np.random.default_rng(31)
    platform = CrowdsourcingPlatform(
        population=population,
        delay_model=DelayModel(),
        quality_model=QualityModel(),
        rng=rng,
        workers_per_query=5,
    )
    dataset = build_dataset(n_images=240, archetype_fraction=0.3, rng=rng)
    results = []
    labels = []
    for image in dataset:
        results.append(
            platform.post_query(image.metadata, 8.0, TemporalContext.EVENING)
        )
        labels.append(int(image.true_label))
    labels = np.array(labels)
    split = 160
    return (
        results[:split],
        labels[:split],
        results[split:],
        labels[split:],
    )


class TestCrowdQualityControl:
    def test_fit_predict_roundtrip(self, labeled_queries, rng):
        train_results, train_labels, test_results, test_labels = labeled_queries
        cqc = CrowdQualityControl().fit(train_results, train_labels, rng=rng)
        predicted = cqc.truthful_labels(test_results)
        assert predicted.shape == test_labels.shape
        assert np.mean(predicted == test_labels) > 0.8

    def test_beats_majority_voting(self, labeled_queries, rng):
        """The paper's Table I claim: CQC > voting on archetype-rich data."""
        train_results, train_labels, test_results, test_labels = labeled_queries
        cqc = CrowdQualityControl().fit(train_results, train_labels, rng=rng)
        cqc_acc = np.mean(cqc.truthful_labels(test_results) == test_labels)
        vote_acc = np.mean(aggregate_by_voting(test_results) == test_labels)
        assert cqc_acc > vote_acc

    def test_questionnaire_ablation_hurts(self, labeled_queries, rng):
        """The evidence channel is where CQC's advantage comes from."""
        train_results, train_labels, test_results, test_labels = labeled_queries
        full = CrowdQualityControl(use_questionnaire=True).fit(
            train_results, train_labels, rng=np.random.default_rng(1)
        )
        ablated = CrowdQualityControl(use_questionnaire=False).fit(
            train_results, train_labels, rng=np.random.default_rng(1)
        )
        full_acc = np.mean(full.truthful_labels(test_results) == test_labels)
        ablated_acc = np.mean(ablated.truthful_labels(test_results) == test_labels)
        assert full_acc >= ablated_acc

    def test_label_distributions_normalized(self, labeled_queries, rng):
        train_results, train_labels, test_results, _ = labeled_queries
        cqc = CrowdQualityControl().fit(train_results, train_labels, rng=rng)
        dists = cqc.label_distributions(test_results)
        np.testing.assert_allclose(dists.sum(axis=1), 1.0)

    def test_distributions_argmax_matches_labels(self, labeled_queries, rng):
        train_results, train_labels, test_results, _ = labeled_queries
        cqc = CrowdQualityControl().fit(train_results, train_labels, rng=rng)
        labels = cqc.truthful_labels(test_results)
        dists = cqc.label_distributions(test_results)
        np.testing.assert_array_equal(labels, np.argmax(dists, axis=1))

    def test_unfitted_raises(self, labeled_queries):
        _, _, test_results, _ = labeled_queries
        cqc = CrowdQualityControl()
        assert not cqc.is_fitted
        with pytest.raises(RuntimeError):
            cqc.truthful_labels(test_results)
        with pytest.raises(RuntimeError):
            cqc.label_distributions(test_results)

    def test_misaligned_labels_raise(self, labeled_queries, rng):
        train_results, _, _, _ = labeled_queries
        with pytest.raises(ValueError):
            CrowdQualityControl().fit(train_results, np.array([0, 1]), rng=rng)

    def test_empty_results_raise(self, rng):
        with pytest.raises(ValueError):
            CrowdQualityControl().fit([], np.array([]), rng=rng)
