"""Tests for GBT feature importances and CQC's explanation surface."""

import numpy as np
import pytest

from repro.boosting.gbt import GradientBoostedClassifier
from repro.boosting.tree import RegressionTree


class TestTreeSplitCounts:
    def test_counts_splits(self, rng):
        x = np.column_stack([rng.normal(size=200), np.linspace(0, 1, 200)])
        grad = np.where(x[:, 1] > 0.5, 1.0, -1.0)
        tree = RegressionTree(max_depth=2).fit(x, grad)
        counts = tree.feature_split_counts()
        assert counts.shape == (2,)
        assert counts[1] >= 1  # the informative feature is used
        assert counts.sum() == tree.n_leaves() - 1  # binary tree identity

    def test_stump_no_splits(self, rng):
        tree = RegressionTree(max_depth=0).fit(
            rng.normal(size=(10, 3)), rng.normal(size=10)
        )
        np.testing.assert_array_equal(tree.feature_split_counts(), 0)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            RegressionTree().feature_split_counts()


class TestGbtImportances:
    def test_informative_feature_dominates(self, rng):
        # Feature 1 fully determines the label; feature 0 is pure noise.
        x = np.column_stack([rng.normal(size=300), rng.uniform(0, 1, 300)])
        y = (x[:, 1] > 0.5).astype(np.int64)
        model = GradientBoostedClassifier(n_estimators=15, max_depth=2)
        model.fit(x, y, rng=rng)
        importances = model.feature_importances()
        assert importances.shape == (2,)
        assert importances.sum() == pytest.approx(1.0)
        assert importances[1] > 0.8

    def test_degenerate_fit_uniform(self, rng):
        # Constant labels: trees never split; importances fall back uniform.
        x = rng.normal(size=(30, 4))
        y = np.zeros(30, dtype=np.int64)
        model = GradientBoostedClassifier(n_estimators=2, max_depth=2)
        model.fit(x, y, rng=rng)
        np.testing.assert_allclose(model.feature_importances(), 0.25)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            GradientBoostedClassifier().feature_importances()


class TestCqcExplanation:
    @pytest.fixture(scope="class")
    def fitted_cqc(self, population):
        from repro.core.cqc import CrowdQualityControl
        from repro.crowd.delay import DelayModel
        from repro.crowd.platform import CrowdsourcingPlatform
        from repro.crowd.quality import QualityModel
        from repro.data.dataset import build_dataset
        from repro.utils.clock import TemporalContext

        rng = np.random.default_rng(55)
        platform = CrowdsourcingPlatform(
            population=population,
            delay_model=DelayModel(),
            quality_model=QualityModel(),
            rng=rng,
            workers_per_query=5,
        )
        dataset = build_dataset(n_images=120, archetype_fraction=0.3, rng=rng)
        results = [
            platform.post_query(img.metadata, 8.0, TemporalContext.EVENING)
            for img in dataset
        ]
        cqc = CrowdQualityControl()
        cqc.fit(results, dataset.labels(), rng=rng)
        return cqc

    def test_importances_named_and_normalized(self, fitted_cqc):
        importances = fitted_cqc.feature_importances()
        assert sum(importances.values()) == pytest.approx(1.0)
        assert "frac_says_fake" in importances
        assert "label_frac_severe" in importances

    def test_label_votes_matter(self, fitted_cqc):
        """The label-vote fractions must carry real weight."""
        importances = fitted_cqc.feature_importances()
        label_mass = sum(
            v for k, v in importances.items() if k.startswith("label_frac")
        )
        assert label_mass > 0.2

    def test_unfitted_raises(self):
        from repro.core.cqc import CrowdQualityControl

        with pytest.raises(RuntimeError):
            CrowdQualityControl().feature_importances()
