"""Tests for repro.nn.init (weight initializers)."""

import numpy as np
import pytest

from repro.nn.init import glorot_uniform, he_normal, zeros


class TestGlorotUniform:
    def test_dense_shape_and_bounds(self, rng):
        w = glorot_uniform((64, 32), rng)
        assert w.shape == (64, 32)
        limit = np.sqrt(6.0 / (64 + 32))
        assert np.abs(w).max() <= limit

    def test_conv_shape_fans(self, rng):
        w = glorot_uniform((8, 4, 3, 3), rng)
        fan_in = 4 * 9
        fan_out = 8 * 9
        limit = np.sqrt(6.0 / (fan_in + fan_out))
        assert np.abs(w).max() <= limit

    def test_roughly_zero_mean(self, rng):
        w = glorot_uniform((200, 200), rng)
        assert abs(w.mean()) < 0.01


class TestHeNormal:
    def test_std_matches_fan_in(self, rng):
        w = he_normal((400, 100), rng)
        expected_std = np.sqrt(2.0 / 400)
        assert w.std() == pytest.approx(expected_std, rel=0.1)

    def test_conv_fan_in(self, rng):
        w = he_normal((16, 8, 3, 3), rng)
        expected_std = np.sqrt(2.0 / (8 * 9))
        assert w.std() == pytest.approx(expected_std, rel=0.15)

    def test_1d_shape(self, rng):
        w = he_normal((10,), rng)
        assert w.shape == (10,)


class TestZeros:
    def test_all_zero(self, rng):
        np.testing.assert_array_equal(zeros((3, 4), rng), 0.0)

    def test_dtype(self, rng):
        assert zeros((2,), rng).dtype == np.float64


class TestDeterminism:
    def test_same_rng_state_same_weights(self):
        a = glorot_uniform((5, 5), np.random.default_rng(3))
        b = glorot_uniform((5, 5), np.random.default_rng(3))
        np.testing.assert_array_equal(a, b)
