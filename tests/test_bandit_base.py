"""Tests for repro.bandit.base."""

import numpy as np
import pytest

from repro.bandit.base import ArmStats, ContextualPolicy

ARMS = (1.0, 2.0, 4.0)


class TestArmStats:
    def test_initial(self):
        stats = ArmStats()
        assert stats.pulls == 0
        assert stats.mean_payoff == 0.0

    def test_record_updates_mean(self):
        stats = ArmStats()
        stats.record(-1.0)
        stats.record(-3.0)
        assert stats.pulls == 2
        assert stats.mean_payoff == pytest.approx(-2.0)

    def test_payoffs_retained(self):
        stats = ArmStats()
        stats.record(1.5)
        assert stats.payoffs == [1.5]


class TestContextualPolicy:
    def test_construction_validates(self):
        with pytest.raises(ValueError):
            ContextualPolicy(0, ARMS)
        with pytest.raises(ValueError):
            ContextualPolicy(2, ())
        with pytest.raises(ValueError):
            ContextualPolicy(2, (1.0, -2.0))

    def test_update_and_stats(self):
        policy = ContextualPolicy(2, ARMS)
        policy.update(0, 1, -0.5)
        policy.update(0, 1, -1.5)
        policy.update(1, 0, -2.0)
        assert policy.t == 3
        np.testing.assert_allclose(policy.mean_payoffs(0), [0.0, -1.0, 0.0])
        np.testing.assert_array_equal(policy.pull_counts(0), [0, 2, 0])
        np.testing.assert_array_equal(policy.pull_counts(1), [1, 0, 0])

    def test_contexts_isolated(self):
        policy = ContextualPolicy(2, ARMS)
        policy.update(0, 0, -9.0)
        assert policy.mean_payoffs(1)[0] == 0.0

    def test_arm_cost(self):
        policy = ContextualPolicy(1, ARMS)
        assert policy.arm_cost(2) == 4.0

    def test_bad_indices_raise(self):
        policy = ContextualPolicy(2, ARMS)
        with pytest.raises(IndexError):
            policy.update(2, 0, 0.0)
        with pytest.raises(IndexError):
            policy.update(0, 3, 0.0)
        with pytest.raises(IndexError):
            policy.mean_payoffs(-1)

    def test_select_is_abstract(self):
        with pytest.raises(NotImplementedError):
            ContextualPolicy(1, ARMS).select(0)
