"""Setuptools shim.

Kept alongside pyproject.toml so the package installs in environments whose
setuptools/pip cannot build PEP 660 editable wheels (e.g. offline boxes
without the ``wheel`` package): ``python setup.py develop`` works there.
"""

from setuptools import setup

setup()
